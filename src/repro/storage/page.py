"""Dense-packed page format (Figure 3).

Layout of every page, row or column::

    +--------+--------------------------- payload ----------------+-------+
    | count  | values, tightly packed                  ...padding | info  |
    | uint32 |                                                    | 16 B  |
    +--------+----------------------------------------------------+-------+

``count`` is the number of entries on the page.  The *page info* trailer
sits at a fixed offset from the end and holds the page id (which, with a
value's position on the page, gives the Record ID), a CRC32 checksum of
the rest of the page, and the codec's per-page state (the FOR base
value).

Trailer versions (both 16 bytes, so payload capacity never changes):

* **v1** (legacy): ``<qq`` — page id (int64), FOR base (int64).  No
  checksum; silent corruption is undetectable.
* **v2** (current): ``<IIq`` — page id (uint32), CRC32 (uint32), FOR
  base (int64).  The checksum covers every byte of the page except the
  CRC field itself, so a flipped bit anywhere — header, payload,
  padding, page id, or base — raises
  :class:`~repro.errors.ChecksumError` on decode.

All pages assembled by this module are v2; v1 pages are upgraded in
place when a legacy file is opened
(:func:`repro.storage.persist.open_table`).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compression.base import Codec, PageCodecState
from repro.errors import ChecksumError, PageFormatError, StorageError
from repro.types.schema import TableSchema

DEFAULT_PAGE_SIZE = 4096
PAGE_HEADER_BYTES = 4
PAGE_TRAILER_BYTES = 16

_HEADER = struct.Struct("<I")
_TRAILER_V1 = struct.Struct("<qq")  # page_id, codec base value
_TRAILER = struct.Struct("<IIq")  # page_id, crc32, codec base value

#: Process-wide switch: set ``False`` to skip CRC verification on decode
#: (measured by ``benchmarks/bench_ablation_checksum.py``; never disable
#: in production use).  Checksums are still *written* while disabled.
_VERIFY_CHECKSUMS = True


def set_checksum_verification(enabled: bool) -> bool:
    """Toggle decode-time CRC verification; returns the previous value."""
    global _VERIFY_CHECKSUMS
    previous = _VERIFY_CHECKSUMS
    _VERIFY_CHECKSUMS = bool(enabled)
    return previous


def checksum_verification_enabled() -> bool:
    """Whether decodes currently verify page checksums."""
    return _VERIFY_CHECKSUMS


def page_payload_bytes(page_size: int) -> int:
    """Payload capacity of one page."""
    payload = page_size - PAGE_HEADER_BYTES - PAGE_TRAILER_BYTES
    if payload <= 0:
        raise StorageError(f"page size {page_size} too small for header/trailer")
    return payload


def page_checksum(page: bytes) -> int:
    """CRC32 over the whole page minus the trailer's CRC field."""
    crc_offset = len(page) - PAGE_TRAILER_BYTES + 4
    crc = zlib.crc32(page[:crc_offset])
    return zlib.crc32(page[crc_offset + 4 :], crc)


def _assemble(page_size: int, count: int, payload: bytes, page_id: int, base: int) -> bytes:
    capacity = page_payload_bytes(page_size)
    if len(payload) > capacity:
        raise PageFormatError(
            f"payload of {len(payload)} bytes exceeds page capacity {capacity}"
        )
    padding = b"\x00" * (capacity - len(payload))
    page = _HEADER.pack(count) + payload + padding + _TRAILER.pack(page_id, 0, base)
    return page[: -PAGE_TRAILER_BYTES + 4] + _HEADER.pack(page_checksum(page)) + page[-8:]


def _disassemble(page: bytes, page_size: int) -> tuple[int, bytes, int, int]:
    if len(page) != page_size:
        raise PageFormatError(f"page has {len(page)} bytes, expected {page_size}")
    (count,) = _HEADER.unpack_from(page, 0)
    page_id, crc, base = _TRAILER.unpack_from(page, page_size - PAGE_TRAILER_BYTES)
    if _VERIFY_CHECKSUMS:
        actual = page_checksum(page)
        if actual != crc:
            raise ChecksumError(
                f"page {page_id} checksum mismatch: stored {crc:#010x}, "
                f"computed {actual:#010x}"
            )
    payload = page[PAGE_HEADER_BYTES : page_size - PAGE_TRAILER_BYTES]
    return count, payload, page_id, base


def upgrade_page_v1(page: bytes) -> bytes:
    """Rewrite a legacy v1 page trailer as v2, computing its checksum.

    v1 and v2 trailers are both 16 bytes, so the payload is untouched;
    legacy files carried no checksum, so the fresh CRC attests only to
    bytes as read (garbage in, checksummed garbage out).
    """
    page_id, base = _TRAILER_V1.unpack_from(page, len(page) - PAGE_TRAILER_BYTES)
    if not 0 <= page_id < 2**32:
        raise PageFormatError(f"v1 page id {page_id} out of range for upgrade")
    body = page[: len(page) - PAGE_TRAILER_BYTES]
    upgraded = body + _TRAILER.pack(page_id, 0, base)
    return (
        upgraded[: -PAGE_TRAILER_BYTES + 4]
        + _HEADER.pack(page_checksum(upgraded))
        + upgraded[-8:]
    )


def downgrade_page_v2(page: bytes) -> bytes:
    """Rewrite a v2 page trailer as legacy v1 (testing/compat helper)."""
    page_id, _crc, base = _TRAILER.unpack_from(page, len(page) - PAGE_TRAILER_BYTES)
    return page[: len(page) - PAGE_TRAILER_BYTES] + _TRAILER_V1.pack(page_id, base)


class RowPageCodec:
    """Encodes/decodes row pages: whole tuples at a fixed stride.

    Tuples are stored back to back at :attr:`TableSchema.row_stride`
    (tuple width padded for alignment), each attribute at its fixed
    offset — the classic NSM layout without a slot directory.
    """

    def __init__(self, schema: TableSchema, page_size: int = DEFAULT_PAGE_SIZE):
        self.schema = schema
        self.page_size = page_size
        self._stride = schema.row_stride
        fields = {}
        offset = 0
        for attr in schema:
            disk_dtype = "<i4" if attr.attr_type.is_integer else f"S{attr.width}"
            fields[attr.name] = (disk_dtype, offset)
            offset += attr.width
        self._disk_dtype = np.dtype(
            {
                "names": list(fields),
                "formats": [fmt for fmt, _ in fields.values()],
                "offsets": [off for _, off in fields.values()],
                "itemsize": self._stride,
            }
        )
        self.tuples_per_page = page_payload_bytes(page_size) // self._stride
        if self.tuples_per_page <= 0:
            raise StorageError(
                f"row stride {self._stride} exceeds page payload "
                f"({page_payload_bytes(page_size)} bytes)"
            )

    @property
    def stride(self) -> int:
        """On-disk bytes per tuple."""
        return self._stride

    def encode(self, page_id: int, columns: dict[str, np.ndarray]) -> bytes:
        """Build one page from column slices (all the same length)."""
        counts = {len(col) for col in columns.values()}
        if len(counts) != 1:
            raise PageFormatError(f"ragged column slices: {sorted(counts)}")
        count = counts.pop()
        if count > self.tuples_per_page:
            raise PageFormatError(
                f"{count} tuples exceed page capacity {self.tuples_per_page}"
            )
        rows = np.zeros(count, dtype=self._disk_dtype)
        for attr in self.schema:
            rows[attr.name] = columns[attr.name]
        return _assemble(self.page_size, count, rows.tobytes(), page_id, 0)

    def decode(self, page: bytes) -> tuple[int, np.ndarray]:
        """Parse a page into ``(page_id, structured row array)``."""
        count, payload, page_id, _base = _disassemble(page, self.page_size)
        if count > self.tuples_per_page:
            raise PageFormatError(
                f"page claims {count} tuples, capacity is {self.tuples_per_page}"
            )
        rows = np.frombuffer(payload, dtype=self._disk_dtype, count=count)
        return page_id, rows

    def column_from_rows(self, rows: np.ndarray, name: str) -> np.ndarray:
        """Extract one attribute column (as its in-memory dtype)."""
        attr = self.schema.attribute(name)
        column = rows[name]
        if attr.attr_type.is_integer:
            return column.astype(np.int64)
        return np.ascontiguousarray(column)

    def decode_columns(self, page: bytes) -> tuple[int, int, dict[str, np.ndarray]]:
        """Parse a page into ``(page_id, count, columns dict)``.

        Common interface with the compressed row codec
        (:class:`repro.storage.rowz.CompressedRowPageCodec`).
        """
        page_id, rows = self.decode(page)
        columns = {
            attr.name: self.column_from_rows(rows, attr.name)
            for attr in self.schema
        }
        return page_id, len(rows), columns


class ColumnPageCodec:
    """Encodes/decodes column pages: single-attribute values via a codec."""

    def __init__(self, codec: Codec, page_size: int = DEFAULT_PAGE_SIZE):
        self.codec = codec
        self.page_size = page_size
        self.values_per_page = codec.values_per_page(page_payload_bytes(page_size))

    def encode(self, page_id: int, values: np.ndarray) -> bytes:
        """Build one page from a slice of the column."""
        if len(values) > self.values_per_page:
            raise PageFormatError(
                f"{len(values)} values exceed page capacity {self.values_per_page}"
            )
        payload, state = self.codec.encode_page(values)
        return _assemble(self.page_size, len(values), payload, page_id, state.base)

    def decode(self, page: bytes) -> tuple[int, np.ndarray]:
        """Parse a page into ``(page_id, value array)`` (full decode)."""
        count, payload, page_id, base = _disassemble(page, self.page_size)
        values = self.codec.decode_page(payload, count, PageCodecState(base=base))
        return page_id, values

    def encode_prefix(self, page_id: int, values: np.ndarray) -> tuple[bytes, int]:
        """Fill one page with a data-dependent number of leading values.

        Used for variable-capacity codecs (RLE); returns the page bytes
        and how many values were consumed.
        """
        payload, state, consumed = self.codec.encode_prefix(
            values, page_payload_bytes(self.page_size)
        )
        page = _assemble(self.page_size, consumed, payload, page_id, state.base)
        return page, consumed

    def decode_raw(self, page: bytes) -> tuple[int, int, bytes, PageCodecState]:
        """Parse a page without decoding values.

        Returns ``(page_id, count, payload, state)`` so scanners can do
        selective decodes via :meth:`Codec.decode_positions`.
        """
        count, payload, page_id, base = _disassemble(page, self.page_size)
        return page_id, count, payload, PageCodecState(base=base)
