"""Extension bench — Table 1's last row: more CPUs / more disks."""

import numpy as np
from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import capacity_sweep


def bench_capacity_sweep(benchmark):
    out = run_once(benchmark, lambda: capacity_sweep.run(num_rows=BENCH_ROWS))
    publish(out, "ext_capacity_sweep.txt")

    cpdb = out.series["cpdb"]
    measured = out.series["measured"]
    predicted = out.series["predicted"]
    # Speedup is non-decreasing in cpdb: more disks hurt columns (the
    # query turns CPU-bound), more CPUs help them.
    order = np.argsort(cpdb)
    sorted_measured = np.asarray(measured)[order]
    assert all(
        b >= a - 1e-9 for a, b in zip(sorted_measured, sorted_measured[1:])
    )
    # Model and simulator agree within 15% across the sweep.
    rel_err = np.abs(np.asarray(predicted) - np.asarray(measured)) / np.asarray(
        measured
    )
    assert rel_err.max() < 0.15
