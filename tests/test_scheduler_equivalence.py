"""Concurrent scheduler vs. the serial oracle — byte-identical, always.

N randomly generated queries (seed-replayable) run concurrently through
the :class:`~repro.engine.scheduler.Scheduler` under every combination
of sharing on/off and all four scanner architectures; each handle's
result must be byte-identical (positions, columns, dtypes) to the same
query executed serially, and spot-checked against the NumPy-free
reference oracle.  To replay one failing combination::

    pytest tests/test_scheduler_equivalence.py -k "32-on-column"
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data.tpch import generate_orders
from repro.database import Database
from repro.engine.executor import run_scan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.engine.scheduler import QueryState, Scheduler, WorkloadQuery
from repro.errors import QueryTimeout
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.testing.harness import CONFIGS
from repro.testing.oracle import oracle_scan

ROWS = 600

CONFIG_BY_NAME = {config.name: config for config in CONFIGS}

SELECTABLE = (
    "O_ORDERKEY",
    "O_CUSTKEY",
    "O_TOTALPRICE",
    "O_ORDERDATE",
    "O_SHIPPRIORITY",
    "O_ORDERSTATUS",
)


@pytest.fixture(scope="module")
def orders_data():
    return generate_orders(ROWS, seed=17)


def make_workload(seed: int, n: int, data) -> list[ScanQuery]:
    """``n`` random scan queries, fully determined by ``seed``.

    Column sets repeat often (drawn from a small pool) so that shared
    scans actually trigger; selectivities span empty to full results.
    """
    rng = random.Random(f"scheduler-equivalence-{seed}")
    pools = [
        ("O_ORDERKEY", "O_TOTALPRICE"),
        ("O_ORDERKEY", "O_CUSTKEY", "O_ORDERDATE"),
        SELECTABLE,
    ]
    queries = []
    for _ in range(n):
        select = pools[rng.randrange(len(pools))]
        predicates = ()
        if rng.random() < 0.8:
            attr = rng.choice([name for name in select if name != "O_ORDERSTATUS"])
            selectivity = rng.choice([0.0, 0.1, 0.45, 0.9, 1.0])
            predicates = (
                predicate_for_selectivity(attr, data.column(attr), selectivity),
            )
        queries.append(ScanQuery("ORDERS", select=select, predicates=predicates))
    return queries


def assert_identical(got, want) -> None:
    assert np.array_equal(got.positions, want.positions)
    assert got.positions.dtype == want.positions.dtype
    assert list(got.columns) == list(want.columns)
    for name in want.columns:
        assert np.array_equal(got.columns[name], want.columns[name]), name
        assert got.columns[name].dtype == want.columns[name].dtype, name


@pytest.mark.parametrize("config_name", [config.name for config in CONFIGS])
@pytest.mark.parametrize("sharing", ["on", "off"])
@pytest.mark.parametrize("n", [2, 8, 32])
def test_concurrent_matches_serial(orders_data, config_name, sharing, n):
    config = CONFIG_BY_NAME[config_name]
    queries = make_workload(seed=n * 101 + len(config_name), n=n, data=orders_data)
    table = load_table(orders_data, config.layout)
    scheduler = Scheduler(
        max_inflight=max(2, n // 4),
        share_scans=sharing == "on",
        column_scanner=config.column_scanner,
    )
    handles = [scheduler.submit(table, query) for query in queries]
    scheduler.run()
    serial_table = load_table(orders_data, config.layout)
    for index, (handle, query) in enumerate(zip(handles, queries)):
        assert handle.state is QueryState.DONE, f"query {index}: {handle.error}"
        want = run_scan(serial_table, query, column_scanner=config.column_scanner)
        assert_identical(handle.result, want)
    stats = scheduler.stats()
    assert stats["completed"] == n and stats["failed"] == 0
    if sharing == "off":
        assert stats["share_hits"] == 0


@pytest.mark.parametrize("config_name", [config.name for config in CONFIGS])
def test_identical_queries_share_one_stream(orders_data, config_name):
    """Same column set, all in flight together: every follower attaches."""
    config = CONFIG_BY_NAME[config_name]
    table = load_table(orders_data, config.layout)
    query = ScanQuery("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
    scheduler = Scheduler(
        max_inflight=8, share_scans=True, column_scanner=config.column_scanner
    )
    handles = [scheduler.submit(table, query) for _ in range(8)]
    scheduler.run()
    want = run_scan(
        load_table(orders_data, config.layout),
        query,
        column_scanner=config.column_scanner,
    )
    for handle in handles:
        assert handle.state is QueryState.DONE, handle.error
        assert handle.shared
        assert_identical(handle.result, want)
    stats = scheduler.stats()
    assert stats["share_hits"] == 7 and stats["share_misses"] == 1


def test_oracle_spot_check(orders_data):
    """A few scheduler results checked against the reference executor."""
    config = CONFIG_BY_NAME["column"]
    queries = make_workload(seed=7, n=6, data=orders_data)
    table = load_table(orders_data, config.layout)
    scheduler = Scheduler(max_inflight=3, share_scans=True)
    handles = [scheduler.submit(table, query) for query in queries]
    scheduler.run()
    for handle, query in zip(handles, queries):
        expected = oracle_scan(orders_data, query)
        assert handle.result.positions.tolist() == list(expected.positions)
        for name in query.select:
            got = handle.result.columns[name].tolist()
            assert got == pytest.approx(expected.column(name))


def test_seed_replay_is_deterministic(orders_data):
    a = make_workload(seed=42, n=8, data=orders_data)
    b = make_workload(seed=42, n=8, data=orders_data)
    assert a == b
    c = make_workload(seed=43, n=8, data=orders_data)
    assert a != c


class TestInterleavedSubmission:
    """Mid-flight arrivals (the circular-attach path) stay correct."""

    def test_staggered_submission_matches_serial(self, orders_data):
        table = load_table(orders_data, Layout.COLUMN)
        serial_table = load_table(orders_data, Layout.COLUMN)
        queries = make_workload(seed=5, n=12, data=orders_data)
        scheduler = Scheduler(max_inflight=4, share_scans=True)
        handles = []
        for index, query in enumerate(queries):
            handles.append(scheduler.submit(table, query))
            # Let earlier queries make progress so later ones attach
            # to streams mid-pass rather than at segment zero.
            for _ in range(index % 3):
                scheduler.poll()
        scheduler.run()
        for handle, query in zip(handles, queries):
            assert handle.state is QueryState.DONE, handle.error
            assert_identical(handle.result, run_scan(serial_table, query))


class TestDatabaseFacade:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database(layouts=(Layout.ROW, Layout.COLUMN))
        database.create_table(generate_orders(ROWS, seed=17))
        return database

    def test_submit_then_value(self, db, orders_data):
        handle = db.submit("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
        result = handle.value()
        want = db.query("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
        assert_identical(result, want)
        assert handle.done and handle.latency is not None

    def test_submit_queue_time_counts_against_deadline(self, db):
        handle = db.submit("ORDERS", select=("O_ORDERKEY",), timeout=0.0)
        with pytest.raises(QueryTimeout):
            handle.value()
        assert handle.state is QueryState.FAILED

    def test_run_workload_order_and_stats(self, db, orders_data):
        requests = [
            WorkloadQuery("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE")),
            {"table": "ORDERS", "select": ("O_CUSTKEY",), "label": "dict-form"},
            WorkloadQuery(
                "ORDERS",
                select=("O_ORDERKEY", "O_TOTALPRICE"),
                predicates=(
                    predicate_for_selectivity(
                        "O_TOTALPRICE", orders_data.column("O_TOTALPRICE"), 0.5
                    ),
                ),
            ),
        ]
        info: dict = {}
        handles = db.run_workload(requests, max_inflight=2, info=info)
        assert [h.state for h in handles] == [QueryState.DONE] * 3
        assert handles[1].result.num_tuples == ROWS
        assert info["submitted"] == 3 and info["completed"] == 3
        assert info["modeled_io_bytes"] > 0

    def test_run_workload_sharing_reduces_modeled_io(self, db):
        requests = [
            WorkloadQuery("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
            for _ in range(4)
        ]
        on: dict = {}
        off: dict = {}
        db.run_workload(requests, layout=Layout.COLUMN, share_scans=True, info=on)
        db.run_workload(requests, layout=Layout.COLUMN, share_scans=False, info=off)
        assert on["modeled_io_bytes"] < off["modeled_io_bytes"]

    def test_workload_trace_has_per_query_tracks(self, db):
        info: dict = {}
        requests = [
            WorkloadQuery("ORDERS", select=("O_ORDERKEY",), label=f"q{i}")
            for i in range(3)
        ]
        db.run_workload(requests, trace=True, info=info)
        tracer = info["tracer"]
        tracks = {piece.track for piece in tracer.slices}
        assert len(tracks) == 3
