"""Extension bench — the RLE benefit the paper refrained from."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import rle_projection


def bench_rle_projection(benchmark):
    out = run_once(benchmark, lambda: rle_projection.run(num_rows=BENCH_ROWS))
    publish(out, "ext_rle_projection.txt")

    # RLE halves the sorted key column versus Figure 5's FOR-delta.
    fig5_bytes, rle_bytes = out.series["key_bytes"]
    assert rle_bytes < 0.7 * fig5_bytes
    # A projection sorted on a low-cardinality attribute collapses that
    # column by orders of magnitude.
    assert (
        out.series["sorted_column_rle"][0]
        < 0.05 * out.series["sorted_column_plain"][0]
    )
    # And scanning it never gets slower.
    plain_elapsed, rle_elapsed = out.series["scan_elapsed"]
    assert rle_elapsed <= plain_elapsed * 1.01
