"""The paper's CPU-time breakdown (Figure 6, right)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import fmt_seconds


@dataclass(frozen=True)
class CpuBreakdown:
    """Stacked CPU-time components, in seconds.

    ``sys``      — kernel time executing I/O requests.
    ``usr_uop``  — minimum compute time (uops / 3 per cycle).
    ``usr_l2``   — memory→L2 stalls net of overlap with computation,
                   plus full-latency random misses.
    ``usr_l1``   — upper bound on L2→L1 fill stalls.
    ``usr_rest`` — everything else (branches, functional-unit stalls).
    """

    sys: float
    usr_uop: float
    usr_l2: float
    usr_l1: float
    usr_rest: float

    @property
    def user(self) -> float:
        """Total user-mode CPU time."""
        return self.usr_uop + self.usr_l2 + self.usr_l1 + self.usr_rest

    @property
    def total(self) -> float:
        """Total CPU time (the dashed lines of Figure 6, left)."""
        return self.sys + self.user

    def scaled(self, factor: float) -> "CpuBreakdown":
        """Every component multiplied by ``factor``."""
        return CpuBreakdown(
            sys=self.sys * factor,
            usr_uop=self.usr_uop * factor,
            usr_l2=self.usr_l2 * factor,
            usr_l1=self.usr_l1 * factor,
            usr_rest=self.usr_rest * factor,
        )

    def __add__(self, other: "CpuBreakdown") -> "CpuBreakdown":
        return CpuBreakdown(
            sys=self.sys + other.sys,
            usr_uop=self.usr_uop + other.usr_uop,
            usr_l2=self.usr_l2 + other.usr_l2,
            usr_l1=self.usr_l1 + other.usr_l1,
            usr_rest=self.usr_rest + other.usr_rest,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "sys": self.sys,
            "usr-uop": self.usr_uop,
            "usr-L2": self.usr_l2,
            "usr-L1": self.usr_l1,
            "usr-rest": self.usr_rest,
        }

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}={fmt_seconds(value)}" for name, value in self.as_dict().items()
        )
        return f"CPU {fmt_seconds(self.total)} ({parts})"


ZERO_BREAKDOWN = CpuBreakdown(sys=0.0, usr_uop=0.0, usr_l2=0.0, usr_l1=0.0, usr_rest=0.0)
