"""One module per regenerated table/figure, plus the extensions."""

from repro.experiments.figures import (
    capacity_sweep,
    compressed_execution,
    fig02_contour,
    fig02_measured,
    fig06_baseline,
    fig07_selectivity,
    fig08_narrow,
    fig09_compression,
    fig10_prefetch,
    fig11_competing,
    index_breakeven,
    join_analysis,
    model_validation,
    operator_cost,
    pax_comparison,
    rle_projection,
    scan_sharing,
    sensitivity,
    table1_trends,
)

#: The paper's evaluation section.
PAPER_EXPERIMENTS = {
    "figure-2": fig02_contour.run,
    "figure-2-measured": fig02_measured.run,
    "figure-6": fig06_baseline.run,
    "figure-7": fig07_selectivity.run,
    "figure-8": fig08_narrow.run,
    "figure-9": fig09_compression.run,
    "figure-10": fig10_prefetch.run,
    "figure-11": fig11_competing.run,
    "table-1": table1_trends.run,
    "model-validation": model_validation.run,
}

#: Extensions: claims the paper makes in passing (§2.1.1, §6, the
#: conclusion) turned into measured experiments.
EXTENSION_EXPERIMENTS = {
    "index-breakeven": index_breakeven.run,
    "scan-sharing": scan_sharing.run,
    "pax-comparison": pax_comparison.run,
    "compressed-execution": compressed_execution.run,
    "rle-projection": rle_projection.run,
    "join-analysis": join_analysis.run,
    "capacity-sweep": capacity_sweep.run,
    "sensitivity": sensitivity.run,
    "operator-cost": operator_cost.run,
}

ALL_EXPERIMENTS = {**PAPER_EXPERIMENTS, **EXTENSION_EXPERIMENTS}

__all__ = ["ALL_EXPERIMENTS", "PAPER_EXPERIMENTS", "EXTENSION_EXPERIMENTS"]
