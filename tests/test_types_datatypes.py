"""Attribute-type tests."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.types.datatypes import FixedTextType, IntType


class TestIntType:
    def test_width_is_four_bytes(self):
        assert IntType().width == 4

    def test_roundtrip(self):
        t = IntType()
        values = np.array([0, 1, -1, 2**31 - 1, -(2**31)])
        encoded = t.encode_values(values)
        assert len(encoded) == 4 * len(values)
        np.testing.assert_array_equal(t.decode_values(encoded, len(values)), values)

    def test_decoded_dtype_is_int64(self):
        t = IntType()
        out = t.decode_values(t.encode_values(np.array([5])), 1)
        assert out.dtype == np.int64

    def test_out_of_range_rejected(self):
        with pytest.raises(SchemaError):
            IntType().encode_values(np.array([2**31]))

    def test_non_integer_rejected(self):
        with pytest.raises(SchemaError):
            IntType().validate(np.array([1.5]))

    def test_short_buffer_rejected(self):
        with pytest.raises(SchemaError):
            IntType().decode_values(b"\x00\x01", 1)

    def test_equality_and_hash(self):
        assert IntType() == IntType()
        assert hash(IntType()) == hash(IntType())
        assert IntType() != FixedTextType(4)


class TestFixedTextType:
    def test_roundtrip_with_padding(self):
        t = FixedTextType(10)
        values = np.array([b"AIR", b"REG AIR", b""], dtype="S10")
        encoded = t.encode_values(values)
        assert len(encoded) == 30
        np.testing.assert_array_equal(t.decode_values(encoded, 3), values)

    def test_width_validation(self):
        with pytest.raises(SchemaError):
            FixedTextType(0)
        with pytest.raises(SchemaError):
            FixedTextType(-3)

    def test_too_long_value_rejected(self):
        t = FixedTextType(3)
        with pytest.raises(SchemaError):
            t.encode_values(np.array([b"ABCD"], dtype="S4"))

    def test_non_bytes_rejected(self):
        with pytest.raises(SchemaError):
            FixedTextType(4).validate(np.array([1, 2]))

    def test_equality_depends_on_width(self):
        assert FixedTextType(5) == FixedTextType(5)
        assert FixedTextType(5) != FixedTextType(6)

    def test_is_integer_flag(self):
        assert IntType().is_integer
        assert not FixedTextType(4).is_integer
