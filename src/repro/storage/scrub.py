"""Integrity sweeps and corruption accounting.

:class:`CorruptionReport` is the common currency of the fault-tolerance
subsystem: salvage-mode scans accumulate one per query (surfaced through
:class:`~repro.engine.executor.QueryResult`), and the sweep functions
here build one per table or directory:

* :func:`scrub_table` decodes **every page of every file** of a loaded
  table and records each page that fails checksum or decode, with an
  estimate of the rows it covered;
* :func:`verify_table` is the strict variant: raises
  :class:`~repro.errors.ChecksumError` if any page is bad;
* :func:`scrub_directory` opens a persisted table (tolerating torn and
  truncated files) and scrubs it, folding open-time damage into the
  same report.

Run as a CLI: ``python -m repro.storage.scrub DIR...`` scrubs saved
table directories; ``--self-test`` builds a table, injects seeded
faults, and checks that every one is pinpointed (used by ``make
scrub``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.errors import ChecksumError, CompressionError, ReproError, StorageError

#: Sentinel page index for faults that affect a whole file (unreadable
#: metadata, unparseable file) rather than one page.
WHOLE_FILE = -1


@dataclass(frozen=True)
class PageFault:
    """One unreadable page (or whole file) found during a sweep."""

    file: str
    page: int
    rows_lost: int
    error: str

    def describe(self) -> str:
        where = "whole file" if self.page == WHOLE_FILE else f"page {self.page}"
        return f"{self.file}: {where} (~{self.rows_lost} rows): {self.error}"


@dataclass
class CorruptionReport:
    """Where corruption was found and how much data it cost."""

    faults: list[PageFault] = field(default_factory=list)
    #: Pages examined by the sweep or scan that built this report.
    pages_scanned: int = 0

    @property
    def is_clean(self) -> bool:
        return not self.faults

    @property
    def pages_skipped(self) -> int:
        return sum(1 for fault in self.faults if fault.page != WHOLE_FILE)

    @property
    def estimated_rows_lost(self) -> int:
        return sum(fault.rows_lost for fault in self.faults)

    def per_file(self) -> dict[str, int]:
        """Fault count per file name."""
        counts: dict[str, int] = {}
        for fault in self.faults:
            counts[fault.file] = counts.get(fault.file, 0) + 1
        return counts

    def record(self, file: str, page: int, rows_lost: int, error: Exception | str) -> None:
        self.faults.append(
            PageFault(file=file, page=page, rows_lost=rows_lost, error=str(error))
        )

    def merge(self, other: "CorruptionReport") -> "CorruptionReport":
        self.faults.extend(other.faults)
        self.pages_scanned += other.pages_scanned
        return self

    def summary(self) -> str:
        if self.is_clean:
            return f"clean ({self.pages_scanned} pages scanned)"
        lines = [
            f"{len(self.faults)} fault(s), ~{self.estimated_rows_lost} rows lost, "
            f"{self.pages_scanned} pages scanned:"
        ]
        lines.extend(f"  {fault.describe()}" for fault in self.faults)
        return "\n".join(lines)


# --- sweeps -------------------------------------------------------------------


def _scrub_paged_file(file, decode, span_of, report: CorruptionReport) -> None:
    for index in range(file.num_pages):
        report.pages_scanned += 1
        try:
            decode(file.read_page(index))
        except (StorageError, CompressionError) as exc:
            report.record(file.name, index, span_of(index), exc)


def scrub_table(table) -> CorruptionReport:
    """Decode every page of every file of ``table``; report the damage."""
    from repro.storage.table import ColumnTable

    report = CorruptionReport()
    if isinstance(table, ColumnTable):
        for column_file in table.column_files.values():
            _scrub_paged_file(
                column_file.file,
                column_file.page_codec.decode,
                lambda index, cf=column_file: cf.row_span_of_page(
                    index, table.num_rows
                ),
                report,
            )
    else:
        _scrub_paged_file(
            table.file,
            table.page_codec.decode_columns,
            table.row_span_of_page,
            report,
        )
    return report


def verify_table(table) -> CorruptionReport:
    """Strict sweep: returns the (clean) report or raises ChecksumError."""
    report = scrub_table(table)
    if not report.is_clean:
        raise ChecksumError(
            f"table {table.schema.name!r} failed verification: {report.summary()}"
        )
    return report


def scrub_partitioned(ptable) -> CorruptionReport:
    """Scrub every partition of a partitioned table into one report."""
    report = CorruptionReport()
    for partition in ptable.partitions:
        shard = scrub_table(partition.table)
        for fault in shard.faults:
            report.record(
                f"{fault.file}[p{partition.index}]",
                fault.page,
                fault.rows_lost,
                fault.error,
            )
        report.pages_scanned += shard.pages_scanned
    return report


def scrub_directory(directory: str | pathlib.Path) -> CorruptionReport:
    """Open a persisted table (salvaging what loads) and scrub it.

    Partitioned directories (those holding a ``manifest.json``) are
    swept partition by partition, faults tagged with the partition
    index.
    """
    from repro.storage.persist import (
        is_partitioned_directory,
        open_partitioned_table,
        open_table,
    )

    report = CorruptionReport()
    if is_partitioned_directory(directory):
        try:
            ptable = open_partitioned_table(directory, salvage=report)
        except ReproError as exc:
            report.record("manifest.json", WHOLE_FILE, 0, exc)
            return report
        return report.merge(scrub_partitioned(ptable))
    try:
        table = open_table(directory, salvage=report)
    except ReproError as exc:
        # Metadata too damaged to interpret the page files at all.
        report.record("meta.json", WHOLE_FILE, 0, exc)
        return report
    return report.merge(scrub_table(table))


# --- CLI ----------------------------------------------------------------------


def _self_test() -> int:
    """Inject seeded faults into a saved table and require detection."""
    import tempfile

    from repro.data.tpch import generate_orders
    from repro.storage.faults import drop_trailing_pages, flip_bit_on_disk, tear_file
    from repro.storage.layout import Layout
    from repro.storage.loader import load_table
    from repro.storage.persist import open_table, save_table

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        data = generate_orders(2_000, seed=7)
        for layout in (Layout.ROW, Layout.COLUMN, Layout.PAX):
            directory = tmp_path / layout.value
            save_table(load_table(data, layout), directory)
            clean = scrub_table(open_table(directory))
            pages_file = sorted(directory.glob("*.pages"))[0]
            flip_bit_on_disk(pages_file, byte=100, bit=3)
            tear_file(sorted(directory.glob("*.pages"))[-1], 4096)
            if sorted(directory.glob("*.pages"))[0].stat().st_size >= 3 * 4096:
                drop_trailing_pages(pages_file, 4096)
            report = scrub_directory(directory)
            ok = clean.is_clean and not report.is_clean
            print(f"[{layout.value}] clean scrub: {clean.summary()}")
            print(f"[{layout.value}] after faults: {report.summary()}")
            if not ok:
                failures += 1
    print("self-test:", "FAILED" if failures else "ok")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.scrub",
        description="Sweep persisted table directories for corruption.",
    )
    parser.add_argument("directories", nargs="*", help="saved table directories")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="inject seeded faults into a scratch table and verify detection",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return _self_test()
    if not args.directories:
        parser.error("give at least one directory, or --self-test")
    dirty = 0
    for directory in args.directories:
        report = scrub_directory(directory)
        print(f"{directory}: {report.summary()}")
        dirty += 0 if report.is_clean else 1
    return 1 if dirty else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
