#!/usr/bin/env python3
"""Quickstart: load a table both ways, run one query, compare layouts.

Generates a TPC-H-style LINEITEM table, bulk-loads it as a row store
and as a column store, runs the paper's canonical selection query on
both, verifies the engines return identical tuples, and prints the
paper-scale performance estimate for each layout.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    ExperimentConfig,
    Layout,
    ScanQuery,
    generate_lineitem,
    load_table,
    measure_scan,
    predicate_for_selectivity,
    run_scan,
)


def main() -> None:
    # 1. Generate data and bulk-load it under both physical layouts.
    data = generate_lineitem(10_000, seed=42)
    row_table = load_table(data, Layout.ROW)
    column_table = load_table(data, Layout.COLUMN)
    print(f"loaded {data.num_rows} LINEITEM tuples "
          f"({row_table.total_bytes / 1e6:.1f} MB as rows, "
          f"{column_table.total_bytes / 1e6:.1f} MB as columns)")

    # 2. The paper's query template: project a few attributes, filter
    #    the first one at 10 % selectivity.
    predicate = predicate_for_selectivity(
        "L_PARTKEY", data.column("L_PARTKEY"), selectivity=0.10
    )
    query = ScanQuery(
        "LINEITEM",
        select=("L_PARTKEY", "L_ORDERKEY", "L_QUANTITY", "L_SHIPMODE"),
        predicates=(predicate,),
    )
    print(f"query: {query.describe()}")

    # 3. Run it on both layouts — identical operators above the scanners,
    #    so the results must match tuple for tuple.
    row_result = run_scan(row_table, query)
    column_result = run_scan(column_table, query)
    assert row_result.num_tuples == column_result.num_tuples
    for name in query.select:
        np.testing.assert_array_equal(
            row_result.column(name), column_result.column(name)
        )
    print(f"both layouts returned the same {row_result.num_tuples} tuples")

    # 4. Estimate paper-scale performance (60 M rows on the paper's
    #    3-disk Pentium 4 testbed) for each layout.
    config = ExperimentConfig()
    row_measured = measure_scan(row_table, query, config)
    column_measured = measure_scan(column_table, query, config)
    print(f"\nat {config.cardinality:,} rows on the paper's testbed:")
    for label, m in (("row store", row_measured), ("column store", column_measured)):
        bound = "I/O-bound" if m.io_bound else "CPU-bound"
        print(
            f"  {label:13s} elapsed {m.elapsed:6.1f} s  "
            f"(I/O {m.io_elapsed:6.1f} s, CPU {m.cpu.total:5.1f} s, {bound}; "
            f"reads {m.bytes_read / 1e9:.2f} GB)"
        )
    speedup = row_measured.elapsed / column_measured.elapsed
    print(f"\ncolumn-over-row speedup: {speedup:.2f}x")


if __name__ == "__main__":
    main()
