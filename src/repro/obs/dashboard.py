"""Live scheduler dashboard: a refreshing TUI over the telemetry layer.

``python -m repro.obs.dashboard`` drives a demo concurrent workload
through the cooperative scheduler one ``poll()`` round per frame and
redraws the *scheduler board* between rounds: workload counters,
trailing-window latency percentiles and qps, in-flight and sharing
gauges, the admission queue, running queries with their timeslice
counts, live shared-scan streams (cursor position and attached riders),
open circuit-breaker keys, and the tail of the flight-recorder ring.

Everything renders from the same sources production code uses —
:data:`repro.obs.metrics.REGISTRY`, :meth:`repro.engine.scheduler.
Scheduler.board`, :data:`repro.obs.recorder.RECORDER` — so the
dashboard doubles as living documentation of the telemetry subsystem.
``--html`` writes a standalone snapshot page instead of (or after)
animating, for CI artifacts and sharing.

Usage::

    python -m repro.obs.dashboard                   # animated demo
    python -m repro.obs.dashboard --clients 32      # busier board
    python -m repro.obs.dashboard --html board.html # snapshot export
"""

from __future__ import annotations

import html as _html
import math
import pathlib

__all__ = ["main", "render_board", "render_html"]


def _window_stats() -> dict:
    """Current windowed metrics, NaN-safe for display."""
    from repro.obs import metrics as obs_metrics

    window = obs_metrics.WINDOW_QUERY_LATENCY
    return {
        "qps": obs_metrics.WINDOW_QPS.value,
        "inflight": obs_metrics.SCHEDULER_INFLIGHT.value,
        "hit_ratio": obs_metrics.SHARE_HIT_RATIO.value,
        "p50": window.percentile(0.50),
        "p95": window.percentile(0.95),
        "p99": window.percentile(0.99),
        "samples": window.count,
    }


def _fmt_ms(seconds: float) -> str:
    if math.isnan(seconds):
        return "  n/a"
    return f"{seconds * 1e3:6.2f}ms"


def render_board(
    scheduler=None, breaker=None, width: int = 78, write_board=None
) -> str:
    """The scheduler board as plain text (one dashboard frame).

    ``scheduler`` is any object with a ``board()``/``stats()`` pair
    (``None`` renders the metrics-only view); ``breaker`` is an
    optional :class:`~repro.engine.governance.CircuitBreaker`;
    ``write_board`` is the per-table write-store snapshot from
    :meth:`repro.database.Database.write_board` (staged rows, delete
    vector population, budget, merge-in-progress flag).
    """
    from repro.obs import recorder as flight

    rule = "─" * width
    lines = [rule, "repro scheduler board".center(width), rule]

    stats = _window_stats()
    lines.append(
        f"window(60s): qps {stats['qps']:7.1f}  "
        f"p50 {_fmt_ms(stats['p50'])}  p95 {_fmt_ms(stats['p95'])}  "
        f"p99 {_fmt_ms(stats['p99'])}  ({stats['samples']} samples)"
    )
    lines.append(
        f"gauges: in-flight {stats['inflight']:.0f}   "
        f"share hit ratio {stats['hit_ratio']:.1%}"
    )

    if scheduler is not None:
        board = scheduler.board()
        totals = scheduler.stats()
        lines.append(
            f"workload: {totals['submitted']} submitted  "
            f"{board['completed']} completed  {board['failed']} failed  "
            f"{len(board['queued'])} queued  {len(board['running'])} running"
        )
        lines.append(rule)
        lines.append(f"running ({len(board['running'])}):")
        for entry in board["running"][:10]:
            shared = "shared" if entry["shared"] else "solo"
            lines.append(
                f"  {entry['label'][: width - 30]:<{width - 30}} "
                f"{entry['table']:<10} {shared:<6} slices={entry['slices']}"
            )
        if not board["running"]:
            lines.append("  (idle)")
        lines.append(f"queued ({len(board['queued'])}):")
        for label in board["queued"][:8]:
            lines.append(f"  {label}")
        if len(board["queued"]) > 8:
            lines.append(f"  ... and {len(board['queued']) - 8} more")
        if not board["queued"]:
            lines.append("  (empty)")
        lines.append(f"shared streams ({len(board['streams'])}):")
        for stream in board["streams"]:
            riders = ", ".join(stream["riders"][:4])
            if len(stream["riders"]) > 4:
                riders += f", +{len(stream['riders']) - 4}"
            lines.append(
                f"  {stream['table']:<10} segment {stream['cursor']}/"
                f"{stream['segments']}  riders: {riders}"
            )
        if not board["streams"]:
            lines.append("  (none)")
        jobs = board.get("jobs", [])
        if jobs:
            lines.append(f"background jobs ({len(jobs)}):")
            for job in jobs[:6]:
                state = (
                    "FAILED"
                    if job["failed"]
                    else ("done" if job["done"] else "running")
                )
                lines.append(
                    f"  {job['label'][: width - 28]:<{width - 28}} "
                    f"steps={job['steps']:<4} {state}"
                )

    if write_board:
        lines.append(rule)
        lines.append(f"write stores ({len(write_board)}):")
        for name, state in write_board.items():
            budget = (
                f"{state['staged_bytes']}/{state['budget']}B"
                if state["budget"]
                else f"{state['staged_bytes']}B"
            )
            merging = "  MERGING" if state["merging"] else ""
            lines.append(
                f"  {name:<12} staged {state['staged']:>6} ({budget})  "
                f"deleted {state['deleted']:>6}/{state['base_rows']}"
                f"{merging}"[:width]
            )

    if breaker is not None:
        open_keys = breaker.open_keys()
        lines.append(f"breaker: {len(open_keys)} open")
        for key in open_keys[:5]:
            lines.append(f"  OPEN {key}")

    lines.append(rule)
    tail = flight.RECORDER.events()[-8:]
    lines.append(
        f"flight recorder ({len(flight.RECORDER)} events, "
        f"{len(flight.RECORDER.blackboxes)} black boxes):"
    )
    for event in tail:
        who = f" [{event.query}]" if event.query else ""
        detail = " ".join(f"{k}={v}" for k, v in event.detail.items())
        lines.append(f"  #{event.seq:<6} {event.kind:<24}{who} {detail}"[:width])
    lines.append(rule)
    return "\n".join(lines)


def render_html(scheduler=None, breaker=None, write_board=None) -> str:
    """A standalone HTML snapshot of the board (no external assets)."""
    body = _html.escape(render_board(scheduler, breaker, write_board=write_board))
    stats = _window_stats()
    qps = f"{stats['qps']:.1f}"
    p95 = "n/a" if math.isnan(stats["p95"]) else f"{stats['p95'] * 1e3:.2f} ms"
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro scheduler board</title>
<style>
  body {{ background: #101418; color: #d8dee9; font-family: ui-monospace,
         SFMono-Regular, Menlo, Consolas, monospace; margin: 2rem; }}
  .cards {{ display: flex; gap: 1rem; margin-bottom: 1rem; }}
  .card {{ background: #1b2128; border: 1px solid #2c3540; padding: .8rem
          1.2rem; border-radius: 6px; }}
  .card b {{ display: block; font-size: 1.4rem; color: #8fbcbb; }}
  pre {{ background: #161b21; border: 1px solid #2c3540; padding: 1rem;
        border-radius: 6px; overflow-x: auto; }}
</style>
</head>
<body>
<h1>repro scheduler board</h1>
<div class="cards">
  <div class="card"><b>{qps}</b>window qps</div>
  <div class="card"><b>{p95}</b>window p95 latency</div>
  <div class="card"><b>{stats["inflight"]:.0f}</b>in-flight</div>
  <div class="card"><b>{stats["hit_ratio"]:.0%}</b>share hit ratio</div>
</div>
<pre>{body}</pre>
</body>
</html>
"""


def _demo_scheduler(clients: int, rows: int):
    """A scheduler mid-workload for the animated demo."""
    from repro.data.tpch import generate_orders
    from repro.engine.predicate import predicate_for_selectivity
    from repro.engine.query import ScanQuery
    from repro.engine.scheduler import Scheduler
    from repro.storage.layout import Layout
    from repro.storage.loader import load_table

    data = generate_orders(rows, seed=23)
    table = load_table(data, Layout.COLUMN)
    scheduler = Scheduler(max_inflight=8, share_scans=True)
    for index in range(clients):
        selectivity = (0.1, 0.3, 0.6)[index % 3]
        predicate = predicate_for_selectivity(
            "O_TOTALPRICE", data.column("O_TOTALPRICE"), selectivity
        )
        scheduler.submit(
            table,
            ScanQuery(
                "ORDERS",
                select=("O_ORDERKEY", "O_TOTALPRICE"),
                predicates=(predicate,),
            ),
            label=f"demo client-{index}",
        )
    return scheduler


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="Refreshing TUI over the scheduler's telemetry.",
    )
    parser.add_argument(
        "--clients", type=int, default=16, help="demo workload queries"
    )
    parser.add_argument(
        "--rows", type=int, default=20_000, help="demo table rows"
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=0,
        help="redraw every N scheduler rounds (0: only the final board)",
    )
    parser.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="write a standalone HTML snapshot of the final board",
    )
    parser.add_argument(
        "--no-ansi",
        action="store_true",
        help="never emit ANSI clear codes (plain appended frames)",
    )
    args = parser.parse_args(argv)

    scheduler = _demo_scheduler(args.clients, args.rows)
    ansi = (not args.no_ansi) and sys.stdout.isatty()
    rounds = 0
    while scheduler.poll():
        rounds += 1
        if args.frames and rounds % args.frames == 0:
            if ansi:
                print("\x1b[2J\x1b[H", end="")
            print(render_board(scheduler))
    if ansi and args.frames:
        print("\x1b[2J\x1b[H", end="")
    print(render_board(scheduler))
    print(f"(demo finished in {rounds} scheduler rounds)")
    if args.html:
        path = pathlib.Path(args.html)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(scheduler), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Mirror repro.obs.metrics: under ``python -m`` runpy would execute
    # this file as a second module instance with its own globals, while
    # the engine's hooks write to the canonical ``repro.obs.dashboard``.
    from repro.obs import dashboard as _canonical

    raise SystemExit(_canonical.main())
