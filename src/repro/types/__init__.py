"""Fixed-length attribute types and table schemas."""

from repro.types.datatypes import AttributeType, FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema

__all__ = [
    "AttributeType",
    "IntType",
    "FixedTextType",
    "Attribute",
    "TableSchema",
]
