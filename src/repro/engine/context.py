"""Shared execution state: event counters and hardware constants."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cpusim.events import CostEvents
from repro.engine.blocks import DEFAULT_BLOCK_SIZE
from repro.engine.governance import QueryContext
from repro.obs.trace import SpanTracer
from repro.storage.scrub import CorruptionReport


@dataclass
class ExecutionContext:
    """Threaded through every operator of one plan execution."""

    calibration: Calibration = DEFAULT_CALIBRATION
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Evaluate SARGable predicates directly on dictionary codes where
    #: possible, decoding only qualifying values (extension; see
    #: :mod:`repro.engine.compressed_exec`).
    compressed_execution: bool = False
    #: Strict (default): an undecodable page aborts the query with
    #: :class:`~repro.errors.ChecksumError`.  Salvage (``False``): the
    #: page is skipped, its rows are dropped consistently across every
    #: scan node, and the damage lands in :attr:`corruption`.
    strict_integrity: bool = True
    events: CostEvents = field(default_factory=CostEvents)
    #: Pages skipped by salvage-mode scans during this execution.
    corruption: CorruptionReport = field(default_factory=CorruptionReport)
    #: Per-operator span tracing (see :mod:`repro.obs.trace`).  ``None``
    #: (the default) keeps the operator layer on its untraced fast path.
    tracer: SpanTracer | None = None
    #: Lifecycle policy — deadline, cancellation token, memory budget
    #: (see :mod:`repro.engine.governance`).  ``None`` (the default)
    #: skips every governance checkpoint.
    governance: QueryContext | None = None

    def reset_events(self) -> None:
        """Fresh counters (e.g. between repeated executions).

        The old :attr:`events` object is *replaced*, not zeroed, so a
        :class:`~repro.engine.executor.QueryResult` holding it keeps
        the counts of the execution that produced it.  Operators must
        therefore never cache the events object across calls — they
        read it through :attr:`Operator.events
        <repro.engine.operators.base.Operator.events>` on every call,
        which always resolves to the context's current object.
        """
        self.events = CostEvents()
        self.corruption = CorruptionReport()
