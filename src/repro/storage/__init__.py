"""Read-optimized disk storage: dense-packed pages and paged files.

Implements the Section 2.2.1 design: no slotted pages — a page is an
array of values (whole tuples for row storage, single-attribute values
for column storage) with an entry count at the head and page info (page
id, compression state) in a fixed-offset trailer.  Pages are stored
adjacently in a file; a column table uses one file per column.

Every page trailer carries a CRC32 checksum, verified on every decode
(:mod:`repro.storage.page`); transient read faults are retried with
bounded backoff (:mod:`repro.storage.retry`); seeded fault injection
lives in :mod:`repro.storage.faults` and integrity sweeps in
:mod:`repro.storage.scrub`.
"""

from repro.storage.catalog import Catalog
from repro.storage.faults import FaultPlan, FaultyPagedFile
from repro.storage.layout import Layout
from repro.storage.loader import BulkLoader, load_table
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_HEADER_BYTES,
    PAGE_TRAILER_BYTES,
    ColumnPageCodec,
    RowPageCodec,
    checksum_verification_enabled,
    page_checksum,
    page_payload_bytes,
    set_checksum_verification,
)
from repro.storage.pagefile import PagedFile
from repro.storage.persist import open_table, save_table
from repro.storage.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_io
from repro.storage.rowz import CompressedRowPageCodec, schema_is_compressed
from repro.storage.pax import PaxPageCodec
from repro.storage.scrub import (
    CorruptionReport,
    PageFault,
    scrub_directory,
    scrub_table,
    verify_table,
)
from repro.storage.table import (
    ColumnFile,
    ColumnTable,
    PaxTable,
    RowTable,
    Table,
    make_row_page_codec,
)
from repro.storage.write_store import WriteOptimizedStore

__all__ = [
    "CorruptionReport",
    "DEFAULT_RETRY_POLICY",
    "FaultPlan",
    "FaultyPagedFile",
    "PageFault",
    "RetryPolicy",
    "checksum_verification_enabled",
    "page_checksum",
    "retry_io",
    "scrub_directory",
    "scrub_table",
    "set_checksum_verification",
    "verify_table",
    "Catalog",
    "CompressedRowPageCodec",
    "schema_is_compressed",
    "make_row_page_codec",
    "PaxTable",
    "PaxPageCodec",
    "Layout",
    "DEFAULT_PAGE_SIZE",
    "PAGE_HEADER_BYTES",
    "PAGE_TRAILER_BYTES",
    "page_payload_bytes",
    "RowPageCodec",
    "ColumnPageCodec",
    "PagedFile",
    "save_table",
    "open_table",
    "Table",
    "RowTable",
    "ColumnTable",
    "ColumnFile",
    "BulkLoader",
    "load_table",
    "WriteOptimizedStore",
]
