"""CostEvents arithmetic: merge, snapshot, diff, scaled.

Span tracing (``repro.obs.trace``) leans on these being exact inverses:
``diff`` of an exit snapshot against an entry snapshot must recover
precisely the work recorded inside the window, including the
``values_decoded`` dict path that plain integer fields don't cover.
"""

from __future__ import annotations

import pytest

from repro.compression.base import CodecKind
from repro.cpusim.events import CostEvents


def _sample(**overrides) -> CostEvents:
    events = CostEvents(
        tuples_examined=100,
        predicate_evals=40,
        values_copied=60,
        bytes_copied=480,
        pages_touched=3,
        mem_seq_lines=25,
        bytes_read=4096,
    )
    for name, value in overrides.items():
        setattr(events, name, value)
    return events


class TestMerge:
    def test_merge_adds_every_int_field(self):
        a = _sample()
        b = _sample()
        a.merge(b)
        assert a.tuples_examined == 200
        assert a.bytes_copied == 960
        assert a.bytes_read == 8192
        # b is untouched
        assert b.tuples_examined == 100

    def test_merge_accumulates_decoded_counts_per_kind(self):
        a = CostEvents()
        a.count_decode(CodecKind.DICT, 10)
        b = CostEvents()
        b.count_decode(CodecKind.DICT, 5)
        b.count_decode(CodecKind.PACK, 7)
        a.merge(b)
        assert a.values_decoded == {CodecKind.DICT: 15, CodecKind.PACK: 7}

    def test_count_decode_ignores_zero(self):
        events = CostEvents()
        events.count_decode(CodecKind.FOR, 0)
        assert events.values_decoded == {}

    def test_merge_then_diff_round_trips(self):
        base = _sample()
        base.count_decode(CodecKind.DICT, 3)
        extra = _sample(tuples_examined=7)
        extra.count_decode(CodecKind.PACK, 2)
        mark = base.snapshot()
        base.merge(extra)
        assert base.diff(mark).as_dict() == extra.as_dict()


class TestSnapshotDiff:
    def test_snapshot_is_independent(self):
        events = _sample()
        events.count_decode(CodecKind.DICT, 4)
        frozen = events.snapshot()
        events.tuples_examined += 50
        events.count_decode(CodecKind.DICT, 6)
        assert frozen.tuples_examined == 100
        assert frozen.values_decoded == {CodecKind.DICT: 4}

    def test_snapshot_does_not_alias_decoded_dict(self):
        events = CostEvents()
        events.count_decode(CodecKind.DICT, 1)
        frozen = events.snapshot()
        assert frozen.values_decoded is not events.values_decoded

    def test_diff_subtracts_counter_wise(self):
        entry = _sample()
        exit_ = _sample(tuples_examined=130, pages_touched=5)
        delta = exit_.diff(entry)
        assert delta.tuples_examined == 30
        assert delta.pages_touched == 2
        assert delta.predicate_evals == 0

    def test_diff_allows_negative_deltas(self):
        smaller = CostEvents(tuples_examined=3)
        larger = CostEvents(tuples_examined=10)
        assert smaller.diff(larger).tuples_examined == -7

    def test_diff_drops_zero_decoded_entries(self):
        entry = CostEvents()
        entry.count_decode(CodecKind.DICT, 5)
        entry.count_decode(CodecKind.PACK, 2)
        exit_ = CostEvents()
        exit_.count_decode(CodecKind.DICT, 5)
        exit_.count_decode(CodecKind.PACK, 9)
        delta = exit_.diff(entry)
        assert delta.values_decoded == {CodecKind.PACK: 7}

    def test_diff_covers_kinds_only_in_baseline(self):
        entry = CostEvents()
        entry.count_decode(CodecKind.FOR, 4)
        delta = CostEvents().diff(entry)
        assert delta.values_decoded == {CodecKind.FOR: -4}


class TestScaled:
    def test_scaled_multiplies_every_counter(self):
        events = _sample()
        scaled = events.scaled(2.5)
        assert scaled.tuples_examined == 250
        assert scaled.bytes_read == 10240
        # original untouched
        assert events.tuples_examined == 100

    def test_scaled_rounds_to_int(self):
        events = CostEvents(tuples_examined=3)
        assert events.scaled(0.5).tuples_examined == 2  # banker's rounding of 1.5

    def test_scaled_covers_decoded_dict(self):
        events = CostEvents()
        events.count_decode(CodecKind.DICT, 10)
        events.count_decode(CodecKind.FOR_DELTA, 4)
        scaled = events.scaled(3.0)
        assert scaled.values_decoded == {
            CodecKind.DICT: 30,
            CodecKind.FOR_DELTA: 12,
        }

    def test_scaled_zero_factor(self):
        events = _sample()
        assert all(v == 0 for v in events.scaled(0.0).as_dict().values())

    def test_scaled_negative_factor_raises(self):
        with pytest.raises(ValueError):
            _sample().scaled(-1.0)


class TestAsDict:
    def test_as_dict_flattens_decoded_kinds(self):
        events = CostEvents(predicate_evals=9)
        events.count_decode(CodecKind.DICT, 11)
        flat = events.as_dict()
        assert flat["predicate_evals"] == 9
        assert flat["decoded_dict"] == 11

    def test_total_decodes(self):
        events = CostEvents()
        events.count_decode(CodecKind.DICT, 5)
        events.count_decode(CodecKind.PACK, 6)
        assert events.total_decodes() == 11


class TestParallelMerge:
    """Worker events merge into the parent context exactly once."""

    @staticmethod
    def _setup():
        from repro.data.tpch import generate_orders
        from repro.engine.predicate import predicate_for_selectivity
        from repro.engine.query import ScanQuery
        from repro.storage.layout import Layout
        from repro.storage.loader import load_table

        data = generate_orders(1_200, seed=13)
        table = load_table(data, Layout.ROW)
        predicate = predicate_for_selectivity(
            "O_TOTALPRICE", data.column("O_TOTALPRICE"), 0.4
        )
        query = ScanQuery(
            "ORDERS",
            select=("O_ORDERKEY", "O_TOTALPRICE"),
            predicates=(predicate,),
        )
        return table, query

    def test_plan_total_equals_sum_of_worker_deltas(self):
        """A parallel scan's plan-total is exactly the sum of its
        per-worker event deltas, plus the parent gather's own block
        emissions (the only work the merge plan adds for a plain
        scan)."""
        from repro.engine.context import ExecutionContext
        from repro.engine.parallel import WorkerTask, _execute_task, parallel_query
        from repro.engine.plan import ColumnScannerKind
        from repro.storage.partition import partition_ranges

        table, query = self._setup()
        context = ExecutionContext()
        parallel_query(table, query, workers=2, partitions=3, context=context)

        expected = CostEvents()
        gathered_blocks = 0
        for index, row_range in enumerate(partition_ranges(table.num_rows, 3)):
            out = _execute_task(
                WorkerTask(
                    index=index,
                    table=table,
                    query=query,
                    row_range=row_range,
                    position_offset=0,
                    column_scanner=ColumnScannerKind.PIPELINED,
                    calibration=context.calibration,
                    block_size=context.block_size,
                    compressed_execution=False,
                    strict_integrity=True,
                    trace=False,
                )
            )
            expected.merge(out.events)
            if len(out.positions):
                gathered_blocks += 1
        expected.blocks_produced += gathered_blocks  # parent Gather re-emits
        assert context.events.as_dict() == expected.as_dict()

    def test_single_partition_parallel_equals_serial_events(self):
        from repro.engine.context import ExecutionContext
        from repro.engine.executor import run_scan
        from repro.engine.parallel import parallel_query

        table, query = self._setup()
        serial = ExecutionContext()
        run_scan(table, query, serial)
        parallel = ExecutionContext()
        parallel_query(table, query, workers=1, partitions=1, context=parallel)
        got = parallel.events.as_dict()
        want = serial.events.as_dict()
        # The gather node re-emits the worker's materialized block; all
        # scan-side counters must match the serial run exactly.
        assert got.pop("blocks_produced") == want.pop("blocks_produced") + 1
        assert got == want

    def test_traced_parallel_total_matches_context(self):
        """Stitched worker span trees plus the parent merge spans sum
        exactly to the merged plan total — no double counting."""
        from repro.engine.context import ExecutionContext
        from repro.engine.parallel import parallel_query
        from repro.obs.trace import SpanTracer

        table, query = self._setup()
        context = ExecutionContext(tracer=SpanTracer())
        parallel_query(table, query, workers=2, partitions=3, context=context)
        assert context.tracer.total_events().as_dict() == context.events.as_dict()
        tracks = {piece.track for piece in context.tracer.slices}
        assert tracks == {0, 1, 2, 3}  # parent plus one track per worker

    def test_repeated_runs_accumulate_additively(self):
        from repro.engine.context import ExecutionContext
        from repro.engine.parallel import parallel_query

        table, query = self._setup()
        context = ExecutionContext()
        parallel_query(table, query, workers=2, partitions=3, context=context)
        once = context.events.snapshot()
        parallel_query(table, query, workers=2, partitions=3, context=context)
        assert context.events.diff(once).as_dict() == once.as_dict()
