"""Process-wide metrics: counters and log-scale latency histograms.

A deliberately small Prometheus-shaped metrics layer: named counters
and histograms registered in a process-global :data:`REGISTRY`, with
text-format exposition (`the format Prometheus scrapes
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_).

Hooks live at coarse grain only — per query, per page decode, per retry,
per simulated I/O unit — never per tuple, so the always-on cost is a
handful of integer adds per page.  :func:`disable` turns every
``inc``/``observe`` into an early return for true no-op runs (the
overhead gate in CI measures the engine with the whole obs layer
quiescent).

Exposition::

    python -m repro.obs.metrics                 # demo workload, print text
    python -m repro.obs.metrics --serve 9100    # serve /metrics over HTTP
"""

from __future__ import annotations

import bisect

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "enabled",
    "enable",
    "disable",
    "exponential_buckets",
    "render_prometheus",
    "main",
]

#: Module-global switch; checked by every mutation, so a disabled
#: registry costs one attribute load + branch per hook site.
_enabled = True


def enabled() -> bool:
    """Whether metric mutations are currently recorded."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """No-op mode: every ``inc``/``observe`` returns immediately."""
    global _enabled
    _enabled = False


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid Prometheus metric name: {name!r}")
    return name


def exponential_buckets(start: float, factor: float, count: int) -> list[float]:
    """``count`` log-scale bucket bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"need start > 0, factor > 1, count >= 1: {start}, {factor}, {count}"
        )
    return [start * factor**i for i in range(count)]


#: Default latency buckets: 1 µs → ~67 s in ×2 steps.
LATENCY_BUCKETS = exponential_buckets(1e-6, 2.0, 27)


def _fmt(value: float) -> str:
    """A float in Prometheus sample syntax (integers without the dot)."""
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        self._value += amount

    def reset(self) -> None:
        self._value = 0.0

    def render(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
            f"{self.name} {_fmt(self._value)}",
        ]


class Histogram:
    """A cumulative histogram over fixed (log-scale) bucket bounds."""

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str, help: str, buckets: list[float] | None = None):
        self.name = _check_name(name)
        self.help = help
        self.bounds = sorted(buckets if buckets is not None else LATENCY_BUCKETS)
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        # One slot per finite bound plus the implicit +Inf overflow slot.
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        # `le` semantics: the first bound >= value owns the observation.
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    def reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self._count))
        return out

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        for bound, running in self.bucket_counts():
            le = "+Inf" if bound == float("inf") else _fmt(bound)
            lines.append(f'{self.name}_bucket{{le="{le}"}} {running}')
        lines.append(f"{self.name}_sum {_fmt(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


class MetricsRegistry:
    """Named metrics plus their text-format exposition."""

    def __init__(self):
        self._metrics: dict[str, Counter | Histogram] = {}

    def counter(self, name: str, help: str) -> Counter:
        """Get or create a counter (idempotent per name)."""
        return self._register(name, lambda: Counter(name, help), Counter)

    def histogram(
        self, name: str, help: str, buckets: list[float] | None = None
    ) -> Histogram:
        """Get or create a histogram (idempotent per name)."""
        return self._register(name, lambda: Histogram(name, help, buckets), Histogram)

    def _register(self, name, build, expected):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = build()
        elif not isinstance(metric, expected):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def get(self, name: str) -> Counter | Histogram:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset_values(self) -> None:
        """Zero every metric (tests); registrations are kept."""
        for metric in self._metrics.values():
            metric.reset()

    def render(self) -> str:
        """Prometheus text exposition format, newline-terminated."""
        lines: list[str] = []
        for name in self.names():
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumented subsystem writes to.
REGISTRY = MetricsRegistry()


def render_prometheus() -> str:
    """Exposition text for the global registry."""
    return REGISTRY.render()


# --- the engine's standard metrics ---------------------------------------
# Registered at import so exposition always shows the full set (a scrape
# before the first query still sees the series at zero).

QUERIES = REGISTRY.counter(
    "repro_queries_total", "Scan queries executed by the engine."
)
QUERY_SECONDS = REGISTRY.histogram(
    "repro_query_seconds", "Wall-clock latency of one query execution."
)
PAGE_DECODE_SECONDS = REGISTRY.histogram(
    "repro_page_decode_seconds", "Wall-clock time to read+decode one page."
)
PAGES_SALVAGED = REGISTRY.counter(
    "repro_pages_salvaged_total",
    "Corrupt pages skipped by salvage-mode scans instead of aborting.",
)
RETRY_ATTEMPTS = REGISTRY.counter(
    "repro_io_retry_attempts_total",
    "Transient-read retries issued by the storage retry policy.",
)
RETRY_BACKOFF_SECONDS = REGISTRY.counter(
    "repro_io_retry_backoff_seconds_total",
    "Total backoff delay scheduled before storage retries.",
)
RETRY_EXHAUSTED = REGISTRY.counter(
    "repro_io_retry_exhausted_total",
    "Reads that failed even after exhausting the retry budget.",
)
IO_UNITS = REGISTRY.counter(
    "repro_iosim_units_total", "I/O units served by the disk-array simulator."
)
IO_BYTES = REGISTRY.counter(
    "repro_iosim_bytes_total", "Bytes transferred by the disk-array simulator."
)
IO_SEEKS = REGISTRY.counter(
    "repro_iosim_seeks_total",
    "Simulated head repositionings (non-contiguous I/O units).",
)
GOVERNANCE_TIMEOUTS = REGISTRY.counter(
    "repro_governance_timeouts_total",
    "Queries aborted because their wall-clock deadline passed.",
)
GOVERNANCE_CANCELLATIONS = REGISTRY.counter(
    "repro_governance_cancellations_total",
    "Queries aborted by a tripped cancellation token.",
)
GOVERNANCE_BUDGET_ABORTS = REGISTRY.counter(
    "repro_governance_budget_aborts_total",
    "Spill-free aborts after a memory budget was exceeded.",
)
GOVERNANCE_NARROW_RETRIES = REGISTRY.counter(
    "repro_governance_narrow_retries_total",
    "Reduced-width retries that kept a working set inside its budget.",
)
GOVERNANCE_BREAKER_TRIPS = REGISTRY.counter(
    "repro_governance_breaker_trips_total",
    "Circuit-breaker openings for repeatedly failing partitions.",
)
GOVERNANCE_PARTITION_RETRIES = REGISTRY.counter(
    "repro_governance_partition_retries_total",
    "Single-partition kill-and-retry recoveries by the supervisor.",
)
GOVERNANCE_DEGRADATIONS = REGISTRY.counter(
    "repro_governance_degradations_total",
    "Worker-count degradation steps taken by the supervision ladder.",
)
GOVERNANCE_STALLS = REGISTRY.counter(
    "repro_governance_stalls_total",
    "Workers declared stalled after missing their heartbeat window.",
)
SCHEDULER_SUBMITTED = REGISTRY.counter(
    "repro_scheduler_submitted_total",
    "Queries submitted to the concurrent scheduler.",
)
SCHEDULER_COMPLETED = REGISTRY.counter(
    "repro_scheduler_completed_total",
    "Scheduled queries that completed with a result.",
)
SCHEDULER_FAILED = REGISTRY.counter(
    "repro_scheduler_failed_total",
    "Scheduled queries that finished with a typed error.",
)
SCHEDULER_QUEUE_DEPTH = REGISTRY.histogram(
    "repro_scheduler_queue_depth",
    "Admission-queue depth observed at each submit.",
    buckets=exponential_buckets(1, 2.0, 11),
)
SCHEDULER_ADMISSION_WAIT = REGISTRY.histogram(
    "repro_scheduler_admission_wait_seconds",
    "Queue time between submit and admission (counted in the deadline).",
)
SCHEDULER_SHARE_HITS = REGISTRY.counter(
    "repro_scheduler_share_hits_total",
    "Queries that attached to an in-progress shared scan.",
)
SCHEDULER_SHARE_MISSES = REGISTRY.counter(
    "repro_scheduler_share_misses_total",
    "Queries that had to start a fresh scan stream.",
)
SCHEDULER_SHARED_PAGES = REGISTRY.counter(
    "repro_scheduler_shared_pages_total",
    "Pages read by shared scan streams (each counted once per pass).",
)


# --- exposition CLI -------------------------------------------------------


def _demo_workload(rows: int) -> None:
    """A few queries so the exposition shows live numbers."""
    from repro.data.tpch import generate_orders
    from repro.database import Database

    db = Database()
    db.create_table(generate_orders(rows, seed=11))
    predicate = db.predicate("ORDERS", "O_TOTALPRICE", 0.25)
    db.query("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
    db.query(
        "ORDERS",
        select=("O_ORDERDATE", "O_TOTALPRICE"),
        predicates=(predicate,),
    )


def _serve(port: int) -> None:  # pragma: no cover - interactive
    import http.server

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_GET(self):
            body = render_prometheus().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = http.server.HTTPServer(("", port), Handler)
    print(f"serving Prometheus metrics on :{port}/metrics (ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.metrics",
        description="Prometheus text-format exposition of the engine metrics.",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=2_000,
        help="rows of the demo workload run before exposition (0 to skip)",
    )
    parser.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        default=None,
        help="serve the exposition over HTTP instead of printing once",
    )
    args = parser.parse_args(argv)
    if args.rows:
        _demo_workload(args.rows)
    if args.serve is not None:  # pragma: no cover - interactive
        _serve(args.serve)
        return 0
    print(render_prometheus(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Under ``python -m repro.obs.metrics`` runpy executes this file as a
    # *second* module instance (``__main__``) with its own REGISTRY; the
    # engine's hooks write to the instance imported via ``repro.obs``.
    # Delegate to that canonical instance so the exposition shows the
    # demo workload's live numbers instead of a parallel zeroed registry.
    from repro.obs import metrics as _canonical

    raise SystemExit(_canonical.main())
