"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.engine.blocks import DEFAULT_BLOCK_SIZE
from repro.errors import SimulationError

#: The paper's table cardinality: scale 10 LINEITEM / scale 40 ORDERS,
#: 60 M tuples each.
PAPER_CARDINALITY = 60_000_000

#: Materialized rows the engine actually executes on.  Event counts are
#: linear in N and scaled up; this only has to be large enough for the
#: quantile predicates and page mix to be representative.
DEFAULT_EXECUTED_ROWS = 6_000


@dataclass(frozen=True)
class CompetingTraffic:
    """A concurrent sequential scan competing for the disks (§4.5)."""

    file_bytes: int
    #: None = match the prefetch depth of the system under measurement,
    #: as the paper does to present the controller with a balanced load.
    prefetch_depth: int | None = None
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.file_bytes <= 0:
            raise SimulationError(f"competing file must be non-empty: {self.file_bytes}")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one measurement needs beyond the table and query."""

    calibration: Calibration = DEFAULT_CALIBRATION
    cardinality: int = PAPER_CARDINALITY
    prefetch_depth: int | None = None   #: None = calibration default (48)
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Use the paper's "slow" column variant: wait for one column's
    #: request to complete before submitting the next column's.
    slow_column_io: bool = False
    competing: CompetingTraffic | None = None

    @property
    def effective_prefetch_depth(self) -> int:
        if self.prefetch_depth is not None:
            return self.prefetch_depth
        return self.calibration.default_prefetch_depth

    def with_(self, **kwargs) -> "ExperimentConfig":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)
