"""Engine-level chaos harness: seeded faults vs the governance contract.

Where :mod:`repro.storage.faults` attacks the storage layer (transient
read errors, bit flips), this module attacks the *query lifecycle*: it
replays the differential fuzzer's generated cases while injecting

* **slow decodes** — every page read sleeps (:class:`SlowPagedFile`,
  the :class:`~repro.storage.faults.FaultyPagedFile` idiom);
* **allocation spikes** — a burst reservation charged against the
  query's memory budget mid-plan, through the governance tick hook;
* **tight deadlines and mid-scan cancels** — deadlines short enough to
  expire inside a scan, and cancellation tokens tripped at a seeded
  tick;
* **worker kills and stalls** — ``os._exit`` and long sleeps inside
  pool workers, exercising the parallel supervision ladder
  (kill-and-retry, stall detection, degradation, circuit breaker).

Every case asserts the governance invariant:

    *correct result XOR typed error, within deadline x slack.*

A chaos query either completes with the oracle's exact answer
(:mod:`repro.testing.oracle`, the same oracle the differential fuzzer
diffs against) or raises a :class:`~repro.errors.GovernanceError`
subclass — never a wrong answer, never an untyped crash, never a hang.
Everything is a pure function of the integer seed, so any violation is
replayable with ``python -m repro.testing.chaos --seed N``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace

from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, execute_plan
from repro.engine.governance import QueryContext, SupervisionPolicy
from repro.engine.operators.limit import Limit, TopN
from repro.engine.plan import aggregate_plan, scan_plan
from repro.errors import GovernanceError, ReproError
from repro.obs import recorder as flight
from repro.storage.pagefile import PagedFile
from repro.storage.table import ColumnTable, Table
from repro.testing.genquery import GeneratedCase, generate_case
from repro.testing.harness import CONFIGS, ScanConfig, _load, _oracle_expected, compare_result

__all__ = [
    "ChaosCase",
    "ChaosKill",
    "ChaosOutcome",
    "ChaosReport",
    "SlowPagedFile",
    "WorkloadChaosCase",
    "WorkloadChaosOutcome",
    "WorkloadChaosQuery",
    "allowed_seconds",
    "generate_chaos_case",
    "generate_workload_chaos_case",
    "run_chaos_case",
    "run_chaos_suite",
    "run_workload_chaos_case",
    "slow_down_table",
]

#: Multiplier on the case deadline when bounding wall time ("slack").
DEADLINE_SLACK = 5.0
#: Fixed grace on top of the slack product: interpreter start-up, pool
#: forks, and Manager spin-up on a loaded box are real but bounded.
BASE_GRACE_SECONDS = 10.0
#: Wall bound for cases that run without a deadline of their own.
UNGOVERNED_BOUND_SECONDS = 60.0


# --- injectors ------------------------------------------------------------------


class SlowPagedFile(PagedFile):
    """A :class:`PagedFile` whose every page read sleeps first.

    Stands in for a slow decode path (cold cache, heavyweight codec,
    contended disk) without touching the codec layer; shares the
    wrapped file's byte buffer like
    :class:`~repro.storage.faults.FaultyPagedFile` does.
    """

    def __init__(self, inner: PagedFile, delay_s: float):
        super().__init__(inner.name, inner.page_size, retry_policy=inner.retry_policy)
        self._data = inner._data
        self.delay_s = delay_s

    def _read_page_raw(self, index: int) -> bytes:
        time.sleep(self.delay_s)
        return super()._read_page_raw(index)


def slow_down_table(table: Table, delay_s: float) -> None:
    """Route every page read of ``table`` through a sleeping wrapper."""
    if isinstance(table, ColumnTable):
        for column_file in table.column_files.values():
            column_file.file = SlowPagedFile(column_file.file, delay_s)
    else:
        table.file = SlowPagedFile(table.file, delay_s)


# --- cases ----------------------------------------------------------------------


@dataclass
class ChaosCase:
    """One seeded chaos scenario: a generated query plus injections."""

    seed: int
    #: The underlying differential case (workers/partitions set for
    #: parallel mode, forced serial otherwise).
    case: GeneratedCase
    #: Which of the four scanner architectures runs it.
    config_name: str
    #: ``"serial"`` or ``"parallel"``.
    mode: str
    deadline: float | None = None
    memory_budget: int | None = None
    #: Trip the cancellation token once this many governance ticks pass.
    cancel_after_ticks: int | None = None
    #: Per-page-read sleep (serial slow-decode injection).
    slow_decode_s: float = 0.0
    #: One burst reservation charged against the budget mid-plan.
    alloc_spike: int = 0
    alloc_after_ticks: int = 0
    #: Parallel injections (partition index / (index, sleep seconds)).
    inject_kill: int | None = None
    inject_stall: tuple[int, float] | None = None
    stall_timeout: float = 0.25

    def describe(self) -> str:
        parts = [f"chaos seed={self.seed} mode={self.mode} config={self.config_name}"]
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}s")
        if self.memory_budget is not None:
            parts.append(f"budget={self.memory_budget}B")
        if self.cancel_after_ticks is not None:
            parts.append(f"cancel@tick{self.cancel_after_ticks}")
        if self.slow_decode_s:
            parts.append(f"slow_decode={self.slow_decode_s * 1000:.0f}ms/page")
        if self.alloc_spike:
            parts.append(f"alloc_spike={self.alloc_spike}B@tick{self.alloc_after_ticks}")
        if self.inject_kill is not None:
            parts.append(f"kill=partition{self.inject_kill}")
        if self.inject_stall is not None:
            parts.append(
                f"stall=partition{self.inject_stall[0]}/{self.inject_stall[1]}s"
                f" (timeout {self.stall_timeout}s)"
            )
        return " ".join(parts) + "\n  " + self.case.describe().replace("\n", "\n  ")


def _base_case(seed: int) -> GeneratedCase:
    """A non-join generated case derived deterministically from ``seed``.

    Joins stay serial-only in the engine and carry no materializing
    stage worth attacking, so chaos skips to the next deterministic
    alternative seed.
    """
    derived = seed
    case = generate_case(derived)
    while case.kind == "join":
        derived += 100_003
        case = generate_case(derived)
    return case


def generate_chaos_case(seed: int) -> ChaosCase:
    """The chaos scenario for one seed (pure function of the seed)."""
    rng = random.Random(f"chaos-{seed}")
    case = _base_case(seed)
    config_name = rng.choice([config.name for config in CONFIGS])

    if rng.random() < 0.30:
        # Parallel: attack the supervision ladder.
        partitions = rng.choice([2, 3])
        chaos = ChaosCase(
            seed=seed,
            case=replace(case, workers=2, num_partitions=partitions),
            config_name=config_name,
            mode="parallel",
            stall_timeout=0.25,
        )
        roll = rng.random()
        if roll < 0.35:
            chaos.inject_kill = rng.randrange(partitions)
        elif roll < 0.70:
            chaos.inject_stall = (rng.randrange(partitions), 0.6)
        chaos.deadline = rng.choice([0.0, 0.02]) if rng.random() < 0.2 else 15.0
        if rng.random() < 0.3:
            chaos.memory_budget = rng.choice([32_000, 256_000])
        if rng.random() < 0.15:
            chaos.cancel_after_ticks = rng.randint(1, 20)
        return chaos

    # Serial: attack the cooperative checkpoints and the budget.
    chaos = ChaosCase(
        seed=seed,
        case=replace(case, workers=1, num_partitions=None),
        config_name=config_name,
        mode="serial",
    )
    injection = rng.choices(
        ["deadline", "cancel", "budget", "slow", "none"],
        weights=[0.25, 0.20, 0.25, 0.15, 0.15],
    )[0]
    if injection == "deadline":
        chaos.deadline = rng.choice([0.0, 0.001, 0.005, 0.05])
        if rng.random() < 0.3:
            chaos.slow_decode_s = 0.002  # guarantee mid-scan expiry
    elif injection == "cancel":
        chaos.deadline = 10.0
        chaos.cancel_after_ticks = rng.randint(1, 10)
    elif injection == "budget":
        chaos.deadline = 10.0
        chaos.memory_budget = rng.choice([512, 2_048, 16_384, 262_144])
        if rng.random() < 0.5:
            chaos.alloc_spike = rng.choice([100_000, 10_000_000])
            chaos.alloc_after_ticks = rng.randint(1, 6)
    elif injection == "slow":
        chaos.slow_decode_s = rng.choice([0.001, 0.005])
        chaos.deadline = rng.choice([0.01, 0.05, 10.0])
    else:  # "none": governance armed but quiet — must match the oracle
        chaos.deadline = 10.0
        if rng.random() < 0.5:
            chaos.memory_budget = 4_000_000
    return chaos


# --- execution ------------------------------------------------------------------


def _chaos_hook(chaos: ChaosCase):
    """The on-tick hook firing cancels and allocation spikes once."""
    fired = {"cancel": False, "alloc": False}

    def hook(governance: QueryContext) -> None:
        if (
            chaos.cancel_after_ticks is not None
            and not fired["cancel"]
            and governance.ticks >= chaos.cancel_after_ticks
        ):
            fired["cancel"] = True
            governance.token.cancel(f"chaos cancel at tick {governance.ticks}")
        if (
            chaos.alloc_spike
            and not fired["alloc"]
            and governance.ticks >= chaos.alloc_after_ticks
        ):
            fired["alloc"] = True
            if not governance.try_reserve(chaos.alloc_spike):
                governance.budget_abort("chaos allocation spike", chaos.alloc_spike)
            governance.note(
                f"chaos allocation spike of {chaos.alloc_spike:,} B fit the budget"
            )

    return hook


def _run_serial(
    chaos: ChaosCase, config: ScanConfig, context: ExecutionContext
) -> QueryResult:
    case = chaos.case
    table = _load(case, case.query.table, config.layout)
    if chaos.slow_decode_s:
        slow_down_table(table, chaos.slow_decode_s)
    if case.kind == "aggregate":
        plan = aggregate_plan(
            context,
            table,
            case.query,
            case.aggregate,
            sort_based=case.sort_based,
            column_scanner=config.column_scanner,
        )
        return execute_plan(plan)
    scan = scan_plan(context, table, case.query, config.column_scanner)
    if case.kind == "limit":
        return execute_plan(Limit(context, scan, case.limit_count))
    if case.kind == "topn":
        return execute_plan(
            TopN(
                context,
                scan,
                key=case.topn_key,
                count=case.topn_count,
                descending=case.topn_descending,
            )
        )
    return execute_plan(scan)


def _run_parallel(
    chaos: ChaosCase, config: ScanConfig, context: ExecutionContext
) -> QueryResult:
    from repro.engine.parallel import parallel_query

    case = chaos.case
    table = _load(case, case.query.table, config.layout)
    kwargs: dict = {}
    if case.kind == "aggregate":
        kwargs["aggregate"] = case.aggregate
        kwargs["sort_based"] = case.sort_based
    elif case.kind == "limit":
        kwargs["limit"] = case.limit_count
    elif case.kind == "topn":
        kwargs["topn"] = (case.topn_key, case.topn_count, case.topn_descending)
    policy = SupervisionPolicy(
        heartbeat_interval=0.03,
        stall_timeout=chaos.stall_timeout,
        poll_interval=0.02,
    )
    return parallel_query(
        table,
        case.query,
        workers=case.workers,
        partitions=case.num_partitions,
        context=context,
        column_scanner=config.column_scanner,
        policy=policy,
        inject_kill=chaos.inject_kill,
        inject_stall=chaos.inject_stall,
        **kwargs,
    )


def allowed_seconds(chaos: ChaosCase) -> float:
    """The wall bound the invariant holds the case to (deadline x slack).

    A generous fixed grace covers process start-up costs that are real
    but bounded; what the bound actually polices is *hangs* — a query
    that ignores its deadline scales past any slack multiple.
    """
    grace = BASE_GRACE_SECONDS
    if chaos.mode == "parallel":
        grace += 2 * chaos.stall_timeout
        if chaos.inject_stall is not None:
            grace += chaos.inject_stall[1]
    if chaos.deadline is None:
        return UNGOVERNED_BOUND_SECONDS + grace
    return chaos.deadline * DEADLINE_SLACK + grace


@dataclass
class ChaosOutcome:
    """What one chaos case did, checked against the invariant."""

    seed: int
    mode: str
    completed: bool = False
    #: Exception class name when the query raised, else ``None``.
    raised: str | None = None
    elapsed: float = 0.0
    #: Governance outcome notes recorded during the run.
    outcomes: list[str] = field(default_factory=list)
    #: Invariant violations (empty means the contract held).
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _dump_chaos_blackbox(
    chaos: ChaosCase, exc: Exception, governance: QueryContext
) -> None:
    """One replayable black box per raised engine-level chaos case."""
    if not flight.enabled():
        return
    flight.RECORDER.dump_blackbox(
        governance.label,
        error=exc,
        governance=governance.snapshot(),
        replay=f"python -m repro.testing.chaos --seed {chaos.seed}",
    )


def run_chaos_case(chaos: ChaosCase) -> ChaosOutcome:
    """Run one chaos case and check the governance invariant."""
    outcome = ChaosOutcome(seed=chaos.seed, mode=chaos.mode)
    expected = _oracle_expected(chaos.case)
    config = next(c for c in CONFIGS if c.name == chaos.config_name)
    governance = QueryContext.start(
        timeout=chaos.deadline,
        memory_budget=chaos.memory_budget,
        label=f"chaos seed {chaos.seed}",
    )
    governance.on_tick = _chaos_hook(chaos)
    context = ExecutionContext()
    context.governance = governance

    result: QueryResult | None = None
    started = time.monotonic()
    try:
        if chaos.mode == "parallel":
            result = _run_parallel(chaos, config, context)
        else:
            result = _run_serial(chaos, config, context)
    except GovernanceError as exc:
        outcome.raised = type(exc).__name__
        _dump_chaos_blackbox(chaos, exc, governance)
    except Exception as exc:  # noqa: BLE001 - an untyped escape is a finding
        outcome.raised = type(exc).__name__
        outcome.violations.append(
            f"untyped failure escaped governance: {type(exc).__name__}: {exc}"
        )
        _dump_chaos_blackbox(chaos, exc, governance)
    outcome.elapsed = time.monotonic() - started
    outcome.outcomes = list(governance.outcomes)

    if result is not None:
        outcome.completed = True
        diff = compare_result(chaos.case, result, expected)
        if diff:
            outcome.violations.append(f"wrong answer under chaos: {diff}")
    bound = allowed_seconds(chaos)
    if outcome.elapsed > bound:
        outcome.violations.append(
            f"deadline slack exceeded: ran {outcome.elapsed:.2f}s, "
            f"allowed {bound:.2f}s"
        )
    return outcome


# --- chaos under concurrency ----------------------------------------------------


class ChaosKill(ReproError):
    """Typed injected failure standing in for a killed query.

    Raised out of the victim's governance tick hook, it rides the same
    typed-error path a real mid-query fault would: the scheduler
    records it on the victim's handle and detaches the victim from any
    scan share — peers must be untouched.
    """


@dataclass(frozen=True)
class WorkloadChaosQuery:
    """One query of a concurrent chaos batch, possibly a victim."""

    select: tuple[str, ...]
    #: Predicate selectivity (None: no predicate).
    selectivity: float | None
    timeout: float | None = None
    #: ``None`` (healthy peer) or one of kill/cancel/deadline/stall.
    injection: str | None = None
    inject_after_ticks: int = 0
    stall_s: float = 0.0


@dataclass(frozen=True)
class WorkloadChaosCase:
    """A seeded concurrent batch with per-query fault injections."""

    seed: int
    num_rows: int
    layout_name: str  # a CONFIGS name: one of the four architectures
    share_scans: bool
    max_inflight: int
    queries: tuple[WorkloadChaosQuery, ...]

    def describe(self) -> str:
        lines = [
            f"workload-chaos seed={self.seed} rows={self.num_rows} "
            f"config={self.layout_name} share={self.share_scans} "
            f"inflight={self.max_inflight}"
        ]
        for index, query in enumerate(self.queries):
            what = query.injection or "healthy"
            lines.append(
                f"  q{index}: select={','.join(query.select)} "
                f"sel={query.selectivity} timeout={query.timeout} [{what}]"
            )
        return "\n".join(lines)


_WORKLOAD_ATTRS = (
    "O_ORDERKEY",
    "O_CUSTKEY",
    "O_TOTALPRICE",
    "O_SHIPPRIORITY",
    "O_ORDERDATE",
)


def generate_workload_chaos_case(seed: int) -> WorkloadChaosCase:
    """The concurrent chaos scenario for one seed (pure in the seed)."""
    rng = random.Random(f"workload-chaos-{seed}")
    num_rows = rng.randint(200, 600)
    config_name = rng.choice([config.name for config in CONFIGS])
    num_queries = rng.randint(4, 8)
    # 1-3 victims, always leaving at least one healthy peer to assert
    # share isolation against.
    victims = set(
        rng.sample(range(num_queries), rng.randint(1, min(3, num_queries - 1)))
    )
    queries = []
    for index in range(num_queries):
        num_select = rng.randint(1, 3)
        select = tuple(rng.sample(_WORKLOAD_ATTRS, num_select))
        selectivity = rng.choice([None, 0.1, 0.3, 0.6, 0.9])
        if index not in victims:
            queries.append(
                WorkloadChaosQuery(
                    select=select, selectivity=selectivity, timeout=None
                )
            )
            continue
        injection = rng.choice(["kill", "cancel", "deadline", "stall"])
        queries.append(
            WorkloadChaosQuery(
                select=select,
                selectivity=selectivity,
                # Tight-deadline victims race the clock; others get none
                # so a slow box cannot fail the wrong query.
                timeout=rng.choice([0.0, 0.001]) if injection == "deadline" else None,
                injection=injection,
                inject_after_ticks=rng.randint(1, 12),
                stall_s=0.02 if injection == "stall" else 0.0,
            )
        )
    return WorkloadChaosCase(
        seed=seed,
        num_rows=num_rows,
        layout_name=config_name,
        share_scans=rng.random() < 0.5,
        max_inflight=rng.randint(2, num_queries),
        queries=tuple(queries),
    )


def _workload_hook(query: WorkloadChaosQuery):
    """Per-victim tick hook firing its injection exactly once."""
    if query.injection in (None, "deadline"):
        return None
    fired = [False]

    def hook(governance: QueryContext) -> None:
        if fired[0] or governance.ticks < query.inject_after_ticks:
            return
        fired[0] = True
        if query.injection == "kill":
            raise ChaosKill(
                f"chaos kill at tick {governance.ticks} ({governance.label})"
            )
        if query.injection == "cancel":
            governance.token.cancel(f"chaos cancel at tick {governance.ticks}")
        elif query.injection == "stall":
            time.sleep(query.stall_s)
            governance.note(f"chaos stall of {query.stall_s}s")

    return hook


@dataclass
class WorkloadChaosOutcome:
    """What one concurrent chaos batch did, checked per query."""

    seed: int
    #: Per-query: ``"completed"`` or the raised error's class name.
    states: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def run_workload_chaos_case(case: WorkloadChaosCase) -> WorkloadChaosOutcome:
    """Run one concurrent batch; check the invariant per query.

    Every query must end in *correct result XOR typed error*; every
    query with no injection of its own must complete byte-identically
    to its serial oracle run — a victim's kill, cancel, or deadline
    may never corrupt or cancel its scan-share peers.
    """
    import numpy as np

    from repro.data.tpch import generate_orders
    from repro.engine.predicate import predicate_for_selectivity
    from repro.engine.query import ScanQuery
    from repro.engine.scheduler import Scheduler
    from repro.engine.executor import run_scan

    outcome = WorkloadChaosOutcome(seed=case.seed)
    config = next(c for c in CONFIGS if c.name == case.layout_name)
    data = generate_orders(case.num_rows, seed=case.seed % 1_000 + 1)
    from repro.storage.loader import load_table

    table = load_table(data, config.layout)
    scans = []
    for query in case.queries:
        predicates = ()
        if query.selectivity is not None:
            attr = query.select[0]
            predicates = (
                predicate_for_selectivity(
                    attr, data.column(attr), query.selectivity
                ),
            )
        scans.append(
            ScanQuery("ORDERS", select=query.select, predicates=predicates)
        )
    expected = [
        run_scan(load_table(data, config.layout), scan, column_scanner=config.column_scanner)
        for scan in scans
    ]

    scheduler = Scheduler(
        max_inflight=case.max_inflight,
        share_scans=case.share_scans,
        column_scanner=config.column_scanner,
    )
    started = time.monotonic()
    handles = [
        scheduler.submit(
            table,
            scan,
            timeout=query.timeout,
            label=f"workload-chaos seed {case.seed} q{index}",
            on_tick=_workload_hook(query),
            # The scheduler stamps this into the black box it dumps
            # should this query fail — seeded, so the box replays.
            replay=f"python -m repro.testing.chaos --workload-seed {case.seed}",
        )
        for index, (query, scan) in enumerate(zip(case.queries, scans))
    ]
    try:
        scheduler.run()
    except Exception as exc:  # noqa: BLE001 - an escape is a finding
        outcome.violations.append(
            f"untyped failure escaped the scheduler: {type(exc).__name__}: {exc}"
        )
    outcome.elapsed = time.monotonic() - started

    for index, (query, handle, want) in enumerate(
        zip(case.queries, handles, expected)
    ):
        if handle.error is not None:
            outcome.states.append(type(handle.error).__name__)
            if not isinstance(handle.error, (GovernanceError, ChaosKill)):
                outcome.violations.append(
                    f"q{index}: untyped error {type(handle.error).__name__}: "
                    f"{handle.error}"
                )
            if query.injection is None:
                outcome.violations.append(
                    f"q{index}: healthy peer failed with "
                    f"{type(handle.error).__name__} — a victim's fault leaked"
                )
            continue
        outcome.states.append("completed")
        got = handle.result
        if got is None:
            outcome.violations.append(f"q{index}: no result and no error")
            continue
        if not np.array_equal(got.positions, want.positions):
            outcome.violations.append(
                f"q{index}: positions differ from the serial oracle run"
            )
            continue
        for name in want.columns:
            if name not in got.columns or not np.array_equal(
                got.columns[name], want.columns[name]
            ):
                outcome.violations.append(
                    f"q{index}: column {name!r} differs from the serial run"
                )
                break
            if got.columns[name].dtype != want.columns[name].dtype:
                outcome.violations.append(
                    f"q{index}: column {name!r} dtype drifted"
                )
                break

    bound = UNGOVERNED_BOUND_SECONDS + BASE_GRACE_SECONDS
    if outcome.elapsed > bound:
        outcome.violations.append(
            f"workload ran {outcome.elapsed:.2f}s, allowed {bound:.2f}s"
        )
    return outcome


# --- suite ----------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Aggregate result of one chaos sweep."""

    start_seed: int
    num_cases: int
    completed: int = 0
    #: Typed governance errors by class name.
    typed_errors: dict[str, int] = field(default_factory=dict)
    #: ``(seed, violation message)`` pairs; empty means the sweep held.
    violations: list[tuple[int, str]] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        errors = ", ".join(
            f"{name} x{count}" for name, count in sorted(self.typed_errors.items())
        )
        lines = [
            f"chaos: {self.num_cases} cases (seeds {self.start_seed}.."
            f"{self.start_seed + self.num_cases - 1}) in {self.elapsed:.1f}s: "
            f"{self.completed} completed (oracle-equal), "
            f"{sum(self.typed_errors.values())} typed aborts"
            + (f" ({errors})" if errors else ""),
            f"{len(self.violations)} invariant violation(s)",
        ]
        for seed, message in self.violations:
            lines.append(f"VIOLATION seed {seed}: {message}")
            lines.append(f"  repro: python -m repro.testing.chaos --seed {seed}")
        return "\n".join(lines)


def run_chaos_suite(num_cases: int, start_seed: int = 0, progress=None) -> ChaosReport:
    """Sweep ``num_cases`` consecutive chaos seeds."""
    report = ChaosReport(start_seed=start_seed, num_cases=num_cases)
    started = time.monotonic()
    for offset in range(num_cases):
        seed = start_seed + offset
        outcome = run_chaos_case(generate_chaos_case(seed))
        if outcome.completed:
            report.completed += 1
        elif outcome.raised is not None:
            report.typed_errors[outcome.raised] = (
                report.typed_errors.get(outcome.raised, 0) + 1
            )
        report.violations.extend((seed, message) for message in outcome.violations)
        report.elapsed = time.monotonic() - started
        if progress is not None:
            progress(offset + 1, report)
    return report


# --- CLI ------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.chaos",
        description="Chaos harness: injected faults vs the governance contract.",
    )
    parser.add_argument("--cases", type=int, default=200, help="seeds to sweep")
    parser.add_argument("--start-seed", type=int, default=0, help="first seed")
    parser.add_argument("--seed", type=int, default=None, help="replay one seed")
    parser.add_argument(
        "--workload-seed",
        type=int,
        default=None,
        help="replay one concurrent-batch chaos seed",
    )
    parser.add_argument(
        "--show", action="store_true", help="with --seed: print the case and exit"
    )
    parser.add_argument(
        "--blackbox-dir",
        default=None,
        metavar="DIR",
        help="write the flight recorder's black-box dumps (one JSON per "
        "failed query) to DIR before exiting",
    )
    args = parser.parse_args(argv)

    def dump_blackboxes() -> None:
        if args.blackbox_dir is None:
            return
        paths = flight.RECORDER.write_blackboxes(args.blackbox_dir)
        print(f"wrote {len(paths)} black box(es) to {args.blackbox_dir}")

    if args.workload_seed is not None:
        case = generate_workload_chaos_case(args.workload_seed)
        print(case.describe())
        if args.show:
            return 0
        outcome = run_workload_chaos_case(case)
        print(
            f"workload seed {args.workload_seed}: "
            f"{outcome.states} in {outcome.elapsed:.3f}s"
        )
        for violation in outcome.violations:
            print(f"  VIOLATION: {violation}")
        dump_blackboxes()
        return 0 if outcome.ok else 1

    if args.seed is not None:
        chaos = generate_chaos_case(args.seed)
        print(chaos.describe())
        if args.show:
            return 0
        outcome = run_chaos_case(chaos)
        state = "completed" if outcome.completed else f"raised {outcome.raised}"
        print(f"seed {args.seed}: {state} in {outcome.elapsed:.3f}s")
        for note in outcome.outcomes:
            print(f"  note: {note}")
        for violation in outcome.violations:
            print(f"  VIOLATION: {violation}")
        dump_blackboxes()
        return 0 if outcome.ok else 1

    last_tick = [0.0]

    def progress(done: int, report: ChaosReport) -> None:
        now = time.monotonic()
        if now - last_tick[0] >= 5.0 or done == args.cases:
            last_tick[0] = now
            print(
                f"  {done}/{args.cases} cases, {report.completed} completed, "
                f"{len(report.violations)} violation(s), {report.elapsed:.1f}s",
                file=sys.stderr,
            )

    report = run_chaos_suite(args.cases, start_seed=args.start_seed, progress=progress)
    print(report.format())
    dump_blackboxes()
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
