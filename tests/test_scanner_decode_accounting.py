"""Decode-cost accounting in the row scanner (the Figure 9 row story).

The compressed row store decompresses the predicate attribute for every
tuple, other selected attributes only for qualifying tuples — except
FOR-delta, which always decodes whole pages.
"""

import numpy as np
import pytest

from repro.compression.base import CodecKind
from repro.engine.context import ExecutionContext
from repro.engine.executor import run_scan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery


def scan_events(table, data, select, selectivity):
    predicate = predicate_for_selectivity(
        "O_ORDERDATE", data.column("O_ORDERDATE"), selectivity
    )
    context = ExecutionContext()
    query = ScanQuery(
        data.schema.name, select=tuple(select), predicates=(predicate,)
    )
    result = run_scan(table, query, context)
    return context.events, result


class TestCompressedRowDecodes:
    def test_predicate_attr_decoded_for_every_tuple(
        self, orders_z_data, orders_z_row
    ):
        events, _ = scan_events(
            orders_z_row, orders_z_data, ("O_ORDERDATE",), 0.10
        )
        # O_ORDERDATE is PACK-coded: one decode per tuple examined.
        assert events.values_decoded[CodecKind.PACK] >= orders_z_data.num_rows

    def test_selected_attrs_decoded_only_when_qualified(
        self, orders_z_data, orders_z_row
    ):
        events, result = scan_events(
            orders_z_row,
            orders_z_data,
            ("O_ORDERDATE", "O_ORDERPRIORITY"),
            0.01,
        )
        dict_decodes = events.values_decoded.get(CodecKind.DICT, 0)
        assert dict_decodes == result.num_tuples
        assert dict_decodes < orders_z_data.num_rows / 10

    def test_for_delta_decodes_whole_pages_with_qualifiers(
        self, orders_z_data, orders_z_row
    ):
        events, result = scan_events(
            orders_z_row,
            orders_z_data,
            ("O_ORDERDATE", "O_ORDERKEY"),
            0.001,
        )
        # O_ORDERKEY (FOR-delta) pays the *whole page* for any page
        # holding a qualifier — far more than the qualifying count —
        # but pages with no qualifiers are skipped entirely.
        decodes = events.values_decoded[CodecKind.FOR_DELTA]
        assert result.num_tuples > 0
        assert decodes >= 50 * result.num_tuples
        assert decodes <= orders_z_data.num_rows

    def test_uncompressed_row_table_charges_no_decodes(
        self, orders_data, orders_row
    ):
        events, _ = scan_events(orders_row, orders_data, ("O_ORDERDATE",), 0.10)
        assert events.total_decodes() == 0

    def test_decode_work_raises_row_cpu_with_projection(
        self, orders_z_data, orders_z_row
    ):
        """Figure 9: the row store's first CPU rise, from decompression."""
        from repro.cpusim.costmodel import CpuModel

        model = CpuModel()
        one, _ = scan_events(orders_z_row, orders_z_data, ("O_ORDERDATE",), 0.10)
        all_attrs, _ = scan_events(
            orders_z_row,
            orders_z_data,
            orders_z_data.schema.attribute_names,
            0.10,
        )
        assert model.user_instructions(all_attrs) > model.user_instructions(one)


class TestPublicApiSurface:
    def test_every_exported_name_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.compression",
            "repro.storage",
            "repro.engine",
            "repro.iosim",
            "repro.cpusim",
            "repro.model",
            "repro.design",
            "repro.index",
            "repro.data",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (
                    module_name,
                    name,
                )
