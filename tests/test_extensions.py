"""Scan sharing, compressed execution, and trend-projection tests."""

import numpy as np
import pytest

from repro.compression.base import CodecKind
from repro.compression.dictionary import DictionaryCodec
from repro.engine.compressed_exec import rewrite_all, rewrite_predicate
from repro.engine.context import ExecutionContext
from repro.engine.executor import run_scan
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import ScanQuery
from repro.errors import CalibrationError, SimulationError
from repro.iosim.sharing import SharedScanQuery, SharedScanSimulator
from repro.model.params import QueryShape
from repro.model.trends import (
    CPDB_1995,
    CPDB_2005,
    columns_more_attractive_over_time,
    projected_cpdb,
    speedup_trajectory,
)
from repro.types.datatypes import FixedTextType

GB = 1_000_000_000


class TestScanSharing:
    def test_shared_makespan_is_one_pass(self):
        simulator = SharedScanSimulator(9 * GB)
        queries = [SharedScanQuery(f"q{i}") for i in range(6)]
        outcome = simulator.compare(queries)
        one_pass = simulator._scan_seconds()
        assert outcome.shared_makespan == pytest.approx(one_pass)

    def test_sharing_speedup_grows_with_concurrency(self):
        simulator = SharedScanSimulator(4 * GB)
        speedups = []
        for count in (1, 2, 4):
            queries = [SharedScanQuery(f"q{i}") for i in range(count)]
            speedups.append(simulator.compare(queries).speedup)
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[1] > 1.8
        assert speedups[2] > speedups[1]

    def test_late_arrival_rides_the_scan(self):
        simulator = SharedScanSimulator(9 * GB)
        outcome = simulator.compare(
            [SharedScanQuery("a"), SharedScanQuery("b", arrival_time=15.0)]
        )
        # Shared: the late query finishes one pass after its arrival.
        one_pass = simulator._scan_seconds()
        assert outcome.shared_finish["b"] == pytest.approx(15.0 + one_pass)
        assert outcome.shared_finish["b"] < outcome.independent_finish["b"]

    def test_validation(self):
        simulator = SharedScanSimulator(GB)
        with pytest.raises(SimulationError):
            simulator.compare([])
        with pytest.raises(SimulationError):
            simulator.compare([SharedScanQuery("a"), SharedScanQuery("a")])
        with pytest.raises(SimulationError):
            simulator.compare([SharedScanQuery("a", arrival_time=-1.0)])
        with pytest.raises(SimulationError):
            SharedScanSimulator(0)


def make_dict_codec(values, width=11):
    spec = DictionaryCodec.spec_for_values(np.asarray(values, dtype=f"S{width}"))
    return DictionaryCodec(spec, FixedTextType(width))


class TestPredicateRewriting:
    @pytest.fixture
    def codec(self):
        return make_dict_codec([b"1-URGENT", b"2-HIGH", b"3-MEDIUM", b"5-LOW"])

    def test_eq_rewrites_to_code(self, codec):
        predicate = Predicate("p", ComparisonOp.EQ, b"2-HIGH")
        code_predicate = rewrite_predicate(predicate, codec)
        codes = np.array([0, 1, 2, 1])
        np.testing.assert_array_equal(
            code_predicate.evaluate(codes), [False, True, False, True]
        )

    def test_eq_missing_value_is_always_false(self, codec):
        predicate = Predicate("p", ComparisonOp.EQ, b"9-NOPE")
        code_predicate = rewrite_predicate(predicate, codec)
        assert not code_predicate.evaluate(np.arange(4)).any()

    def test_ne_missing_value_is_always_true(self, codec):
        predicate = Predicate("p", ComparisonOp.NE, b"9-NOPE")
        code_predicate = rewrite_predicate(predicate, codec)
        assert code_predicate.evaluate(np.arange(4)).all()

    @pytest.mark.parametrize(
        "op",
        [ComparisonOp.LE, ComparisonOp.LT, ComparisonOp.GE, ComparisonOp.GT],
    )
    def test_range_rewrites_match_value_semantics(self, codec, op):
        values = codec.dictionary
        codes = np.arange(values.size)
        for boundary in [b"0-AAA", b"2-HIGH", b"4-ZZZ", b"9-ZZZ"]:
            predicate = Predicate("p", op, boundary)
            code_predicate = rewrite_predicate(predicate, codec)
            expected = predicate.evaluate(values.astype("S11"))
            np.testing.assert_array_equal(
                code_predicate.evaluate(codes), expected, err_msg=f"{op} {boundary}"
            )

    def test_rewrite_all_fails_closed(self, codec):
        predicates = (
            Predicate("p", ComparisonOp.EQ, b"2-HIGH"),
            Predicate("p", ComparisonOp.LE, b"5-LOW"),
        )
        assert rewrite_all(predicates, codec) is not None


class TestCompressedExecutionEndToEnd:
    @pytest.fixture(scope="class")
    def compressed(self):
        from repro.experiments.workloads import prepare_orders

        return prepare_orders(1_200, seed=77, compressed=True)

    @pytest.mark.parametrize(
        "predicate",
        [
            Predicate("O_ORDERPRIORITY", ComparisonOp.EQ, b"1-URGENT"),
            Predicate("O_ORDERPRIORITY", ComparisonOp.LE, b"3-MEDIUM"),
            Predicate("O_ORDERSTATUS", ComparisonOp.NE, b"F"),
            Predicate("O_ORDERPRIORITY", ComparisonOp.EQ, b"MISSING"),
        ],
    )
    def test_same_answers_on_and_off(self, compressed, predicate):
        query = ScanQuery(
            compressed.schema.name,
            select=(predicate.attr, "O_TOTALPRICE"),
            predicates=(predicate,),
        )
        off = run_scan(compressed.column, query, ExecutionContext())
        on = run_scan(
            compressed.column, query, ExecutionContext(compressed_execution=True)
        )
        assert on.num_tuples == off.num_tuples
        np.testing.assert_array_equal(on.positions, off.positions)
        for name in query.select:
            np.testing.assert_array_equal(on.column(name), off.column(name))

    def test_decode_counts_drop(self, compressed):
        predicate = Predicate("O_ORDERPRIORITY", ComparisonOp.EQ, b"1-URGENT")
        query = ScanQuery(
            compressed.schema.name,
            select=("O_TOTALPRICE",),
            predicates=(predicate,),
        )
        off = ExecutionContext()
        run_scan(compressed.column, query, off)
        on = ExecutionContext(compressed_execution=True)
        run_scan(compressed.column, query, on)
        n = compressed.data.num_rows
        assert off.events.values_decoded[CodecKind.DICT] >= n
        # On codes: no dictionary lookups for the unprojected predicate.
        assert on.events.values_decoded.get(CodecKind.DICT, 0) == 0

    def test_flag_ignored_for_unrewritable_predicates(self, compressed):
        # PACK columns cannot run on codes: both paths must still agree.
        predicate = Predicate("O_ORDERDATE", ComparisonOp.LE, 9_000)
        query = ScanQuery(
            compressed.schema.name,
            select=("O_ORDERDATE",),
            predicates=(predicate,),
        )
        off = run_scan(compressed.column, query, ExecutionContext())
        on = run_scan(
            compressed.column, query, ExecutionContext(compressed_execution=True)
        )
        np.testing.assert_array_equal(on.positions, off.positions)


class TestTrends:
    def test_reference_points(self):
        assert projected_cpdb(1995) == pytest.approx(CPDB_1995)
        assert projected_cpdb(2005) == pytest.approx(CPDB_2005)

    def test_growth_is_exponential(self):
        assert projected_cpdb(2015) == pytest.approx(90.0, rel=0.01)

    def test_factors(self):
        assert projected_cpdb(2005, multicore_factor=2.0) == pytest.approx(60.0)
        assert projected_cpdb(2005, num_disks=3) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            projected_cpdb(1980)
        with pytest.raises(CalibrationError):
            projected_cpdb(2005, multicore_factor=0)

    def test_conclusion_claim_holds(self):
        shape = QueryShape(32.0, 16.0, 0.10, 8, 4)
        points = speedup_trajectory(shape, [1995, 2000, 2005, 2010, 2015, 2020])
        assert columns_more_attractive_over_time(points)
        assert points[-1].speedup >= points[0].speedup

    def test_trajectory_needs_two_points(self):
        shape = QueryShape(32.0, 16.0, 0.10, 8, 4)
        points = speedup_trajectory(shape, [2005])
        with pytest.raises(CalibrationError):
            columns_more_attractive_over_time(points)
