"""Compression-advisor tests."""

import numpy as np
import pytest

from repro.compression.advisor import CompressionAdvisor, candidate_specs, choose_spec
from repro.compression.base import CodecKind
from repro.errors import CompressionError
from repro.types.datatypes import FixedTextType, IntType


class TestChooseSpec:
    def test_low_cardinality_picks_dictionary(self):
        values = np.array([0, 5, 9] * 100)
        spec = choose_spec(IntType(), values)
        assert spec.kind is CodecKind.DICT
        assert spec.bits == 2

    def test_sorted_keys_pick_for_delta(self):
        keys = np.cumsum(np.random.default_rng(0).integers(1, 3, size=10_000))
        spec = choose_spec(IntType(), keys, max_dictionary=16)
        assert spec.kind is CodecKind.FOR_DELTA
        assert spec.bits <= 2

    def test_prefer_cheap_decode_penalizes_for_delta(self):
        # A short sorted run: FOR-delta needs 1 bit, the random-access
        # schemes 7; the decode penalty must flip the near-tie away
        # from FOR-delta's whole-page decodes.
        keys = np.cumsum(np.ones(100, dtype=np.int64))
        greedy = choose_spec(IntType(), keys, max_dictionary=16)
        cheap = choose_spec(
            IntType(), keys, max_dictionary=16, prefer_cheap_decode=True
        )
        assert greedy.kind is CodecKind.FOR_DELTA
        assert cheap.kind is not CodecKind.FOR_DELTA

    def test_incompressible_column_stays_uncompressed(self):
        rng = np.random.default_rng(5)
        values = rng.integers(-(2**31), 2**31 - 1, size=5_000)
        spec = choose_spec(IntType(), values, max_dictionary=16)
        assert spec.kind is CodecKind.NONE

    def test_text_uses_pack_or_dict(self):
        values = np.array([b"short", b"words", b"here"] * 50, dtype="S69")
        spec = choose_spec(FixedTextType(69), values, max_dictionary=2)
        assert spec.kind is CodecKind.PACK
        assert spec.bits == 5 * 8

    def test_never_wider_than_uncompressed(self):
        rng = np.random.default_rng(6)
        for _ in range(5):
            values = rng.integers(0, 2**20, size=500)
            spec = choose_spec(IntType(), values)
            assert spec.bits <= 32


class TestCandidates:
    def test_includes_identity_always(self):
        choices = candidate_specs(IntType(), np.array([1, 2, 3]))
        kinds = {choice.kind for choice in choices}
        assert CodecKind.NONE in kinds
        assert CodecKind.PACK in kinds
        assert CodecKind.FOR in kinds
        assert CodecKind.FOR_DELTA in kinds

    def test_no_frame_candidates_for_text(self):
        values = np.array([b"a", b"b"], dtype="S4")
        kinds = {c.kind for c in candidate_specs(FixedTextType(4), values)}
        assert CodecKind.FOR not in kinds
        assert CodecKind.FOR_DELTA not in kinds


class TestAdvisor:
    def test_advises_whole_table(self):
        advisor = CompressionAdvisor()
        types = {"a": IntType(), "b": FixedTextType(4)}
        columns = {
            "a": np.array([1, 2, 3] * 10),
            "b": np.array([b"x", b"y"] * 15, dtype="S4"),
        }
        specs = advisor.advise(types, columns)
        assert set(specs) == {"a", "b"}
        assert all(spec.bits > 0 for spec in specs.values())

    def test_missing_column_rejected(self):
        advisor = CompressionAdvisor()
        with pytest.raises(CompressionError):
            advisor.advise({"a": IntType()}, {})

    def test_matches_fig5_expectations(self, orders_data):
        """The advisor should do at least as well as Figure 5 on ORDERS."""
        advisor = CompressionAdvisor()
        types = {a.name: a.attr_type for a in orders_data.schema}
        specs = advisor.advise(types, orders_data.columns)
        packed_bits = sum(specs[a.name].bits for a in orders_data.schema)
        # Figure 5's ORDERS-Z is 92 bits; the advisor may beat it
        # (it can dictionary-code what the paper left uncompressed).
        assert packed_bits <= 92
