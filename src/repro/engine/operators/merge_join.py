"""Merge join over sorted inputs (Section 2.2.3).

Joins two children whose key columns are sorted ascending, with the
restriction that the *left* child's keys are unique (the dimension /
parent side).  This covers the paper's schema: ORDERS (unique, sorted
``O_ORDERKEY``) joined with LINEITEM (sorted, many per key).
"""

from __future__ import annotations

import numpy as np

from repro.engine.blocks import Block, concat_blocks, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.errors import EngineError, PlanError


class MergeJoin(Operator):
    """One-to-many merge join of two sorted block streams."""

    def __init__(
        self,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
    ):
        super().__init__(context)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self._ready: list[Block] = []
        self._done = False

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"{self.left_key} = {self.right_key}"

    def _open(self) -> None:
        self._ready = []
        self._done = False

    def _next(self) -> Block | None:
        if not self._done:
            self._ready = self._compute()
            self._done = True
        if not self._ready:
            return None
        return self._ready.pop(0)

    def _drain(self, child: Operator) -> Block:
        blocks = []
        while True:
            block = child.next()
            if block is None:
                break
            if len(block):
                blocks.append(block)
        return concat_blocks(blocks)

    def _compute(self) -> list[Block]:
        left = self._drain(self.left)
        right = self._drain(self.right)
        if not len(left) or not len(right):
            return []
        left_keys = left.column(self.left_key)
        right_keys = right.column(self.right_key)
        self._check_sorted(left_keys, "left")
        self._check_sorted(right_keys, "right")
        if np.unique(left_keys).size != left_keys.size:
            raise PlanError(
                f"merge join requires unique keys on the left input "
                f"({self.left_key!r})"
            )

        # Advance both cursors once over each input: n_left + n_right
        # key comparisons, exactly the merge-join cost model.
        self.events.join_comparisons += len(left_keys) + len(right_keys)

        # For each right tuple, the index of its matching left tuple.
        idx = np.searchsorted(left_keys, right_keys)
        idx_clipped = np.minimum(idx, len(left_keys) - 1)
        matches = left_keys[idx_clipped] == right_keys
        right_sel = np.flatnonzero(matches)
        left_sel = idx_clipped[matches]

        matched = int(right_sel.size)
        out_columns: dict[str, np.ndarray] = {}
        for name, column in left.columns.items():
            out_columns[name] = column[left_sel]
        for name, column in right.columns.items():
            if name in out_columns:
                if name != self.right_key or not np.array_equal(
                    out_columns[name], column[right_sel]
                ):
                    raise EngineError(
                        f"duplicate output attribute {name!r} in merge join"
                    )
                continue
            out_columns[name] = column[right_sel]

        width = 0
        for name in out_columns:
            width += int(out_columns[name].dtype.itemsize)
        self.events.values_copied += matched * len(out_columns)
        self.events.bytes_copied += matched * width

        block = Block(
            columns=out_columns,
            positions=right.positions[right_sel],
        )
        return split_into_blocks(block, self.context.block_size)

    @staticmethod
    def _check_sorted(keys: np.ndarray, side: str) -> None:
        if keys.size > 1 and np.any(keys[1:] < keys[:-1]):
            raise PlanError(f"merge join {side} input is not sorted")
