"""A small facade tying the subsystems together.

:class:`Database` is the entry point a downstream user wants: register
generated data once, get both physical layouts (plus optional
compression and materialized views), run queries without touching the
plan builders, and ask the analytical model which layout a workload
should use.

    >>> from repro import Database, generate_orders
    >>> db = Database()
    >>> db.create_table(generate_orders(10_000, seed=1))
    >>> result = db.query("ORDERS", select=("O_ORDERDATE", "O_TOTALPRICE"))
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import time

import numpy as np

from repro.compression.advisor import CompressionAdvisor
from repro.data.generator import GeneratedTable
from repro.design.materialize import MaterializedView, ViewRouter, materialize_view
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, run_scan
from repro.engine.hybrid import build_overlay, run_scan_with_store
from repro.engine.governance import (
    CancellationToken,
    CircuitBreaker,
    QueryContext,
    SupervisionPolicy,
)
from repro.engine.plan import ColumnScannerKind
from repro.engine.predicate import Predicate, predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.engine.scheduler import JobHandle, QueryHandle, Scheduler, WorkloadQuery
from repro.errors import ChecksumError, PlanError, StorageError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ScanMeasurement, measure_scan
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight
from repro.obs.export import QueryProfile
from repro.obs.provenance import provenance
from repro.obs.recorder import FlightRecorder
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import SpanTracer
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.scrub import CorruptionReport, scrub_table
from repro.storage.table import Table
from repro.storage.write_store import WriteOptimizedStore


@dataclass
class _TableEntry:
    data: GeneratedTable
    tables: dict[Layout, Table]
    router: ViewRouter
    #: Staged inserts + delete vector feeding the hybrid read path.
    store: WriteOptimizedStore
    #: Arguments of every :meth:`Database.create_view` call, replayed
    #: after a merge so views stay consistent with the new base.
    view_defs: list[dict]


class Database:
    """Registered tables in every layout, with query routing on top."""

    def __init__(
        self,
        layouts: tuple[Layout, ...] = (Layout.ROW, Layout.COLUMN),
        page_size: int = 4096,
    ):
        if not layouts:
            raise StorageError("a database needs at least one layout")
        self.layouts = tuple(layouts)
        self.page_size = page_size
        self._tables: dict[str, _TableEntry] = {}
        #: Remembers repeatedly-failing partitions across this
        #: instance's parallel queries and routes them straight to
        #: salvage-mode serial scans (see :mod:`repro.engine.governance`).
        self.breaker = CircuitBreaker()
        #: Lazily-created persistent scheduler behind :meth:`submit`.
        self._scheduler: Scheduler | None = None

    # --- DDL -------------------------------------------------------------

    def create_table(
        self,
        data: GeneratedTable,
        compress: bool = False,
        sort_key: str | None = None,
        write_budget: int | None = None,
    ) -> None:
        """Register one generated table, materialized in every layout.

        ``sort_key`` declares the clustering attribute: merges re-sort
        the combined data on it (stable, so duplicate-key rows keep
        insertion order).  ``write_budget`` caps the bytes the table's
        write store may stage before an insert raises
        :class:`~repro.errors.MemoryBudgetExceeded` (merge to drain).
        """
        name = data.schema.name
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        if compress:
            advisor = CompressionAdvisor()
            attr_types = {a.name: a.attr_type for a in data.schema}
            specs = advisor.advise(attr_types, data.columns)
            data = data.with_schema(data.schema.with_codecs(specs))
        tables = {
            layout: load_table(data, layout, page_size=self.page_size)
            for layout in self.layouts
        }
        router = ViewRouter(tables[self.layouts[0]])
        store = WriteOptimizedStore(
            data.schema, sort_key=sort_key, memory_budget=write_budget
        )
        store.attach_base(data.num_rows)
        self._tables[name] = _TableEntry(
            data=data, tables=tables, router=router, store=store, view_defs=[]
        )

    def create_view(
        self,
        table: str,
        attributes: tuple[str, ...],
        name: str | None = None,
        sort_key: str | None = None,
        compress: bool = True,
        use_rle: bool = False,
    ) -> MaterializedView:
        """Materialize a vertical partition and register it for routing."""
        entry = self._entry(table)
        view = materialize_view(
            entry.data,
            attributes,
            name=name,
            sort_key=sort_key,
            layout=(
                Layout.COLUMN if Layout.COLUMN in self.layouts else self.layouts[0]
            ),
            compress=compress,
            use_rle=use_rle,
            page_size=self.page_size,
        )
        entry.router.add_view(view)
        entry.view_defs.append(
            {
                "attributes": tuple(attributes),
                "name": view.name,
                "sort_key": sort_key,
                "compress": compress,
                "use_rle": use_rle,
            }
        )
        return view

    def _rematerialize_views(self, entry: _TableEntry) -> None:
        """Rebuild every view of a table after its base data changed."""
        entry.router = ViewRouter(entry.tables[self.layouts[0]])
        for spec in entry.view_defs:
            view = materialize_view(
                entry.data,
                spec["attributes"],
                name=spec["name"],
                sort_key=spec["sort_key"],
                layout=(
                    Layout.COLUMN
                    if Layout.COLUMN in self.layouts
                    else self.layouts[0]
                ),
                compress=spec["compress"],
                use_rle=spec["use_rle"],
                page_size=self.page_size,
            )
            entry.router.add_view(view)

    # --- catalog -----------------------------------------------------------

    def table(self, name: str, layout: Layout | None = None) -> Table:
        """One materialized table (default: the first configured layout)."""
        entry = self._entry(name)
        layout = layout or self.layouts[0]
        if layout not in entry.tables:
            raise StorageError(f"table {name!r} not loaded as {layout}")
        return entry.tables[layout]

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def _entry(self, name: str) -> _TableEntry:
        if name not in self._tables:
            raise StorageError(f"no table {name!r}; have {self.tables()}")
        return self._tables[name]

    # --- writes (the Figure 1 write-optimized store) -------------------------

    def write_store(self, table: str) -> WriteOptimizedStore:
        """The staging store behind one table's hybrid read path."""
        return self._entry(table).store

    def insert(self, table: str, row: tuple) -> None:
        """Stage one tuple; visible to queries immediately (hybrid scan)."""
        self.insert_many(table, [row])

    def insert_many(self, table: str, rows: list[tuple]) -> None:
        """Stage a batch of tuples atomically-in-memory.

        Validation and the write budget are enforced row-by-row; on
        failure the already-staged prefix remains (idempotent retries
        should re-derive the batch from the caller's source of truth).
        """
        entry = self._entry(table)
        entry.store.insert_many(rows)
        if obs_metrics.enabled():
            obs_metrics.WRITE_STAGED_ROWS.inc(len(rows))
            obs_metrics.WRITE_STAGED_BYTES.set(self._staged_bytes())
        flight.record(
            "write.stage",
            None,
            table=table,
            rows=len(rows),
            staged=len(entry.store),
        )

    def delete(
        self,
        table: str,
        predicates: tuple[Predicate, ...] = (),
        positions=None,
    ) -> int:
        """Mark rows deleted in the table's delete vector.

        Either by explicit global ``positions`` or by ``predicates``
        (both base rows and staged rows are matched; no predicates
        means *all* rows).  Deletes are logical until the next merge;
        queries stop seeing the rows immediately.  Returns how many
        rows were newly deleted (re-deleting is idempotent).
        """
        entry = self._entry(table)
        store = entry.store
        if positions is not None:
            if predicates:
                raise PlanError("pass predicates or positions, not both")
            newly = store.delete(positions)
        else:
            # The probe scan runs the *base* table directly: delete
            # positions are global (un-remapped), so the hybrid path
            # (which renumbers around prior deletes) must not be used.
            probe_attr = predicates[0].attr if predicates else (
                entry.data.schema.attribute_names[0]
            )
            scan = ScanQuery(
                table, select=(probe_attr,), predicates=tuple(predicates)
            )
            base = entry.tables[self.layouts[0]]
            matched = list(run_scan(base, scan).positions)
            staged = store.staged_columns()
            if staged:
                live = np.ones(len(store), dtype=bool)
                for predicate in predicates:
                    live &= predicate.evaluate(staged[predicate.attr])
                matched.extend(
                    (store.base_rows + np.flatnonzero(live)).tolist()
                )
            newly = store.delete(matched) if matched else 0
        if obs_metrics.enabled() and newly:
            obs_metrics.WRITE_DELETED_ROWS.inc(newly)
        flight.record(
            "write.delete",
            None,
            table=table,
            newly=newly,
            deleted=store.deletes.count(),
        )
        return newly

    def merge(
        self, table: str, verify: bool = False, background: bool = False
    ) -> JobHandle | None:
        """Drain the write store into freshly rebuilt read-store tables.

        Foreground (default): rebuild every materialized layout with
        deletes reclaimed and staged rows appended (re-clustered on the
        declared ``sort_key``, stable), swap them in, re-materialize
        views, and clear the staging area.  ``verify=True`` sweeps the
        rebuilt pages before the swap, so a merge can never install
        corrupt pages.

        Background: the same work proceeds incrementally on the
        database's scheduler (one layout per step) — returns a
        :class:`~repro.engine.scheduler.JobHandle`; drive it with
        ``db.scheduler.run()`` (or interleave your own submits).
        Queries in flight finish on the old snapshot; writes are frozen
        until the merge commits.
        """
        if background:
            return self.start_merge(table, verify=verify)
        entry = self._entry(table)
        store = entry.store
        label = f"merge {table}"
        flight.record(
            "write.merge.begin",
            label,
            table=table,
            staged=len(store),
            deleted=store.deletes.count(),
        )
        started = time.perf_counter()
        staged = len(store)
        reclaimed = store.deletes.count()
        store.begin_merge()
        try:
            new_data = store.merged_data(entry.data.schema, entry.data.columns)
            new_tables = {
                layout: load_table(
                    new_data, layout, page_size=self.page_size, verify=verify
                )
                for layout in self.layouts
            }
        except BaseException as exc:
            store.end_merge()
            flight.record(
                "write.merge.abort", label, table=table, error=type(exc).__name__
            )
            if flight.enabled():
                flight.RECORDER.dump_blackbox(label, error=exc)
            if obs_metrics.enabled():
                obs_metrics.WRITE_MERGE_ABORTS.inc()
            raise
        store.end_merge()
        entry.data = new_data
        entry.tables = new_tables
        self._rematerialize_views(entry)
        store.reset(new_data.num_rows)
        if obs_metrics.enabled():
            obs_metrics.WRITE_MERGES.inc()
            obs_metrics.WRITE_MERGE_SECONDS.observe(time.perf_counter() - started)
            obs_metrics.WRITE_MERGED_ROWS.inc(staged)
            obs_metrics.WRITE_RECLAIMED_ROWS.inc(reclaimed)
            obs_metrics.WRITE_STAGED_BYTES.set(self._staged_bytes())
        flight.record(
            "write.merge.commit", label, table=table, rows=new_data.num_rows
        )
        return None

    def start_merge(self, table: str, verify: bool = False) -> JobHandle:
        """Kick off an incremental merge on the database's scheduler.

        The merge advances one step per scheduler round (rebuild, then
        one layout load per step, then an atomic in-memory swap), so
        queries submitted before the swap finish on the old snapshot
        and queries submitted after it see the merged table.  The write
        store is frozen for the duration.
        """
        entry = self._entry(table)
        store = entry.store
        label = f"background merge {table}"
        staged = len(store)
        reclaimed = store.deletes.count()
        started = time.perf_counter()

        def steps():
            store.begin_merge()
            flight.record(
                "write.merge.begin",
                label,
                table=table,
                staged=staged,
                deleted=reclaimed,
            )
            try:
                new_data = store.merged_data(
                    entry.data.schema, entry.data.columns
                )
                yield
                new_tables = {}
                for layout in self.layouts:
                    new_tables[layout] = load_table(
                        new_data, layout, page_size=self.page_size, verify=verify
                    )
                    yield
                # The swap is one step: queries never see a half-merged
                # catalog entry.
                entry.data = new_data
                entry.tables = new_tables
                self._rematerialize_views(entry)
            except BaseException as exc:
                store.end_merge()
                flight.record(
                    "write.merge.abort",
                    label,
                    table=table,
                    error=type(exc).__name__,
                )
                if obs_metrics.enabled():
                    obs_metrics.WRITE_MERGE_ABORTS.inc()
                raise
            store.end_merge()
            store.reset(new_data.num_rows)
            if obs_metrics.enabled():
                obs_metrics.WRITE_MERGES.inc()
                obs_metrics.WRITE_MERGE_SECONDS.observe(
                    time.perf_counter() - started
                )
                obs_metrics.WRITE_MERGED_ROWS.inc(staged)
                obs_metrics.WRITE_RECLAIMED_ROWS.inc(reclaimed)
                obs_metrics.WRITE_STAGED_BYTES.set(self._staged_bytes())
            flight.record(
                "write.merge.commit", label, table=table, rows=new_data.num_rows
            )
            return new_data.num_rows

        return self.scheduler.submit_job(steps(), label=label)

    def _staged_bytes(self) -> int:
        return sum(entry.store.staged_bytes for entry in self._tables.values())

    def write_board(self) -> dict:
        """Per-table write-store state for the dashboard panel."""
        return {
            name: {
                "staged": len(entry.store),
                "staged_bytes": entry.store.staged_bytes,
                "deleted": entry.store.deletes.count(),
                "base_rows": entry.store.base_rows,
                "budget": entry.store.memory_budget,
                "merging": entry.store.merging,
            }
            for name, entry in sorted(self._tables.items())
        }

    # --- queries ------------------------------------------------------------

    def query(
        self,
        table: str,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        layout: Layout | None = None,
        use_views: bool = True,
        context: ExecutionContext | None = None,
        salvage: bool = False,
        workers: int = 1,
        partitions: int | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        cancellation: CancellationToken | None = None,
        policy: SupervisionPolicy | None = None,
        column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    ) -> QueryResult:
        """Execute a scan, optionally routed to a covering view.

        When the table has staged writes or logical deletes, the scan
        runs the *hybrid* path (base minus delete vector, plus staged
        rows) and its result is byte-identical to re-running the query
        against a freshly merged table.  Views are bypassed while the
        write store is dirty — they reflect the last merge.

        Strict by default: a corrupt page aborts the query with
        :class:`~repro.errors.ChecksumError`.  With ``salvage=True`` the
        scan skips corrupt pages and reports them through
        ``QueryResult.corruption`` instead.

        ``workers > 1`` fans the scan out over row-range partitions
        (``partitions``, default one per worker) in a multiprocessing
        pool — see :func:`repro.engine.parallel.parallel_query`.  The
        worker count is clamped to ``os.cpu_count()``: oversubscribing
        the fork pool only adds scheduling latency.  Plans the parallel
        executor cannot decompose fall back to the serial engine
        transparently.

        ``timeout`` (seconds), ``memory_budget`` (bytes), and
        ``cancellation`` opt the query into lifecycle governance (see
        :mod:`repro.engine.governance`): it then either completes,
        degrades gracefully, or raises a typed
        :class:`~repro.errors.GovernanceError` subclass — it never
        hangs and never returns a partial result.  They require a
        ``context`` without a governance of its own (or none).
        """
        entry = self._entry(table)
        scan = ScanQuery(table, select=select, predicates=predicates)
        if timeout is not None or memory_budget is not None or cancellation is not None:
            context = context or ExecutionContext()
            if context.governance is not None:
                raise PlanError(
                    "pass either a governed context or timeout/budget/"
                    "cancellation arguments, not both"
                )
            context.governance = QueryContext.start(
                timeout=timeout,
                memory_budget=memory_budget,
                token=cancellation,
                label=f"query on {table}",
            )
        store = entry.store
        hybrid = store.has_changes
        target: Table
        if layout is not None:
            target = self.table(table, layout)
        elif use_views and not hybrid:
            # A dirty write store bypasses views: they materialize the
            # last merged snapshot, not the staged rows/deletes.
            target, _source = entry.router.route(scan)
        else:
            target = entry.tables[self.layouts[0]]
        if hybrid and obs_metrics.enabled():
            obs_metrics.WRITE_HYBRID_QUERIES.inc()
        if workers > 1:
            workers = max(1, min(workers, os.cpu_count() or 1))
        if workers > 1:
            from repro.engine.parallel import parallel_query

            overlay = build_overlay(store, scan) if hybrid else None
            try:
                result = parallel_query(
                    target,
                    scan,
                    workers=workers,
                    partitions=partitions,
                    context=context,
                    salvage=salvage,
                    policy=policy,
                    breaker=self.breaker,
                )
                # The overlay was snapshotted before the fan-out, so a
                # concurrent merge cannot skew the remapping.
                return overlay.apply(result) if overlay is not None else result
            except PlanError:
                # Not decomposable: run the plain serial scan instead.
                pass
        if hybrid:
            return run_scan_with_store(
                target,
                scan,
                store,
                context,
                column_scanner=column_scanner,
                salvage=salvage,
            )
        return run_scan(
            target, scan, context, column_scanner=column_scanner, salvage=salvage
        )

    # --- concurrent workloads ------------------------------------------------

    def _resolve_target(
        self,
        table: str,
        scan: ScanQuery,
        layout: Layout | None,
        use_views: bool,
    ):
        """The table a scan runs against plus its hybrid post-transform.

        Returns ``(target, post)`` where ``post`` is ``None`` for a
        clean table and otherwise applies the write-store overlay
        (delete filtering, position remapping, staged-row append) to
        the finished :class:`QueryResult`.  The overlay snapshots the
        write store *now* — at submit time — so a scheduled query sees
        a consistent image even if writes or a merge land while it is
        queued.
        """
        entry = self._entry(table)
        hybrid = entry.store.has_changes
        if layout is not None:
            target = self.table(table, layout)
        elif use_views and not hybrid:
            target, _source = entry.router.route(scan)
        else:
            target = entry.tables[self.layouts[0]]
        if not hybrid:
            return target, None
        if obs_metrics.enabled():
            obs_metrics.WRITE_HYBRID_QUERIES.inc()
        return target, build_overlay(entry.store, scan).apply

    def submit(
        self,
        table: str,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        layout: Layout | None = None,
        use_views: bool = True,
        salvage: bool = False,
        timeout: float | None = None,
        memory_budget: int | None = None,
        cancellation: CancellationToken | None = None,
        label: str = "",
    ) -> QueryHandle:
        """Enqueue a scan on the database's concurrent scheduler.

        Returns a :class:`~repro.engine.scheduler.QueryHandle`
        immediately; call ``handle.value()`` for the result (driving
        the scheduler cooperatively) or submit more queries first so
        co-running scans of the same table share one stream.  The
        governance deadline starts now — queue time counts against
        ``timeout``.
        """
        scan = ScanQuery(table, select=select, predicates=predicates)
        target, post = self._resolve_target(table, scan, layout, use_views)
        if self._scheduler is None:
            self._scheduler = Scheduler()
        return self._scheduler.submit(
            target,
            scan,
            timeout=timeout,
            memory_budget=memory_budget,
            cancellation=cancellation,
            salvage=salvage,
            post=post,
            # Empty label falls through to the scheduler's unique
            # per-submission default (black-box slices key on it).
            label=label,
        )

    @property
    def scheduler(self) -> Scheduler:
        """The persistent scheduler behind :meth:`submit` (lazy)."""
        if self._scheduler is None:
            self._scheduler = Scheduler()
        return self._scheduler

    def run_workload(
        self,
        requests: list,
        max_inflight: int = 8,
        share_scans: bool = True,
        layout: Layout | None = None,
        use_views: bool = True,
        column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
        trace: bool = False,
        info: dict | None = None,
        slowlog: SlowQueryLog | None = None,
    ) -> list[QueryHandle]:
        """Run a batch of scans concurrently and return their handles.

        Each element of ``requests`` is a
        :class:`~repro.engine.scheduler.WorkloadQuery` (or a dict of
        its fields).  A fresh scheduler executes the batch with
        admission control (``max_inflight``), cooperative
        time-slicing, and — with ``share_scans`` — shared circular
        scans for co-running queries over the same table and column
        set.  Handles come back in submission order; failed queries
        carry their typed error on ``handle.error`` instead of
        raising.  ``info``, when given, receives the scheduler's
        workload stats (queue depth, share hit-rate, modeled I/O) plus
        the batch's :class:`~repro.obs.slowlog.SlowQueryLog` under
        ``"slowlog"`` (pass your own via ``slowlog=`` to set the
        threshold/top-K).
        """
        scheduler = Scheduler(
            max_inflight=max_inflight,
            share_scans=share_scans,
            column_scanner=column_scanner,
            trace=trace,
            slowlog=slowlog,
        )
        for index, request in enumerate(requests):
            if isinstance(request, dict):
                request = WorkloadQuery(**request)
            scan = ScanQuery(
                request.table,
                select=tuple(request.select),
                predicates=tuple(request.predicates),
            )
            target, post = self._resolve_target(
                request.table, scan, layout, use_views
            )
            scheduler.submit(
                target,
                scan,
                timeout=request.timeout,
                memory_budget=request.memory_budget,
                salvage=request.salvage,
                post=post,
                # Unique per submission: the flight recorder slices
                # black-box events by label.
                label=request.label
                or f"workload query #{index} on {request.table}",
            )
        scheduler.run()
        if info is not None:
            info.update(scheduler.stats())
            info["slowlog"] = scheduler.slowlog
            if trace and scheduler.tracer is not None:
                info["tracer"] = scheduler.tracer
        return scheduler.handles()

    # --- observability -------------------------------------------------------

    def flight_recorder(self) -> FlightRecorder:
        """The process-wide flight recorder (lifecycle event ring).

        One recorder serves the whole process — every Database, every
        scheduler batch — so post-mortems see cross-workload context.
        """
        return flight.RECORDER

    def dump_blackbox(self, directory=None):
        """The black boxes captured so far (each one failed query).

        With ``directory`` they are written as one JSON file apiece
        (``blackbox-<seq>.json``) and the paths returned; without it
        the raw dicts are returned newest-last.
        """
        if directory is None:
            return list(flight.RECORDER.blackboxes)
        return flight.RECORDER.write_blackboxes(directory)

    def profile(
        self,
        table: str,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        layout: Layout | None = None,
        use_views: bool = True,
        salvage: bool = False,
        workers: int = 1,
        partitions: int | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        cancellation: CancellationToken | None = None,
        policy: SupervisionPolicy | None = None,
    ) -> QueryProfile:
        """Execute a scan under span tracing.

        Returns a :class:`~repro.obs.export.QueryProfile`: the
        materialized result plus the per-operator span tree, from which
        the EXPLAIN ANALYZE text (``.explain_text()``), a Chrome/
        Perfetto trace (``.chrome_trace()``/``.save_chrome_trace()``),
        and a provenance-stamped flat profile (``.to_dict()``) derive.

        With ``workers > 1`` worker-process span trees are stitched
        into the parent trace (one Perfetto track per worker).  With a
        ``timeout``/``memory_budget``/``cancellation`` the profile
        carries a governance snapshot and ``explain_text()`` appends
        the governance outcomes (why the query degraded).
        """
        context = ExecutionContext(tracer=SpanTracer())
        result = self.query(
            table,
            select,
            predicates,
            layout=layout,
            use_views=use_views,
            context=context,
            salvage=salvage,
            workers=workers,
            partitions=partitions,
            timeout=timeout,
            memory_budget=memory_budget,
            cancellation=cancellation,
            policy=policy,
        )
        return QueryProfile(
            result=result,
            tracer=context.tracer,
            provenance=provenance(context.calibration),
            governance=(
                context.governance.snapshot() if context.governance else None
            ),
        )

    def explain(
        self,
        table: str,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        layout: Layout | None = None,
        use_views: bool = True,
        salvage: bool = False,
        workers: int = 1,
        partitions: int | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        cancellation: CancellationToken | None = None,
        policy: SupervisionPolicy | None = None,
    ) -> str:
        """EXPLAIN ANALYZE: execute the scan traced, render the plan.

        Every plan node is annotated with its wall time, ``next()``
        call/block/row counts, and its exclusive share of the query's
        :class:`~repro.cpusim.events.CostEvents`.  Governed queries get
        a trailing governance section (see :meth:`profile`).
        """
        return self.profile(
            table,
            select,
            predicates,
            layout=layout,
            use_views=use_views,
            salvage=salvage,
            workers=workers,
            partitions=partitions,
            timeout=timeout,
            memory_budget=memory_budget,
            cancellation=cancellation,
            policy=policy,
        ).explain_text()

    def predicate(self, table: str, attr: str, selectivity: float) -> Predicate:
        """A selectivity-calibrated predicate over registered data."""
        entry = self._entry(table)
        return predicate_for_selectivity(
            attr, entry.data.column(attr), selectivity
        )

    # --- integrity -----------------------------------------------------------

    def scrub(self, table: str | None = None) -> dict[str, CorruptionReport]:
        """Sweep every page of every stored table (and view).

        Decodes each page of each materialized layout and of every
        registered materialized view, returning one
        :class:`~repro.storage.scrub.CorruptionReport` per swept
        relation, keyed ``TABLE:layout`` / ``VIEW:view``.
        """
        names = [table] if table is not None else self.tables()
        reports: dict[str, CorruptionReport] = {}
        for name in names:
            entry = self._entry(name)
            for layout, materialized in entry.tables.items():
                reports[f"{name}:{layout.value}"] = scrub_table(materialized)
            for view in entry.router.views:
                reports[f"{name}:{view.name}"] = scrub_table(view.table)
        return reports

    def verify(self, table: str | None = None) -> int:
        """Strict sweep: raises ChecksumError if any page is corrupt.

        Returns the total number of pages verified when clean.
        """
        reports = self.scrub(table)
        dirty = {key: report for key, report in reports.items() if not report.is_clean}
        if dirty:
            details = "; ".join(
                f"{key}: {report.summary()}" for key, report in dirty.items()
            )
            raise ChecksumError(f"database verification failed: {details}")
        return sum(report.pages_scanned for report in reports.values())

    # --- what-if -------------------------------------------------------------

    def estimate(
        self,
        table: str,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        layout: Layout = Layout.COLUMN,
        config: ExperimentConfig | None = None,
    ) -> ScanMeasurement:
        """Paper-scale performance estimate for one scan."""
        if layout not in self.layouts:
            raise PlanError(f"layout {layout} not materialized")
        scan = ScanQuery(table, select=select, predicates=predicates)
        return measure_scan(self.table(table, layout), scan, config)

    def compare_layouts(
        self,
        table: str,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        config: ExperimentConfig | None = None,
    ) -> dict[Layout, ScanMeasurement]:
        """Estimate the same scan under every materialized layout."""
        scan = ScanQuery(table, select=select, predicates=predicates)
        return {
            layout: measure_scan(self.table(table, layout), scan, config)
            for layout in self.layouts
        }
