"""Competing-traffic helpers (Section 4.5).

The paper's competing load is a separate process running a row-system
scan over a different file (LINEITEM), with its prefetch size matched to
the system under measurement so the controller sees a balanced load.
"""

from __future__ import annotations

from repro.iosim.request import FileExtent
from repro.iosim.streams import ScanStream, SubmissionPolicy


def competing_row_scan(
    file_bytes: int,
    unit_bytes: int,
    prefetch_depth: int,
    name: str = "competitor",
    file_name: str = "LINEITEM.competing",
    start_time: float = 0.0,
) -> ScanStream:
    """A row-scan stream usable as background traffic."""
    return ScanStream(
        name=name,
        files=[FileExtent(name=file_name, size_bytes=file_bytes)],
        unit_bytes=unit_bytes,
        prefetch_depth=prefetch_depth,
        policy=SubmissionPolicy.ROW,
        start_time=start_time,
    )
