"""Extension bench — merge-join analysis and the eq. 2 weighting."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import join_analysis


def bench_join_analysis(benchmark):
    out = run_once(benchmark, lambda: join_analysis.run(num_rows=BENCH_ROWS))
    publish(out, "ext_join_analysis.txt")

    # Columns win the join at narrow fact projections and the
    # advantage decays as the projection widens.
    speedups = out.series["speedup"]
    assert speedups[0] > 3.0
    assert all(b < a for a, b in zip(speedups, speedups[1:]))
    # The weighted-file-rate prediction (eq. 2) matches the simulator.
    predicted = out.series["eq2_predicted"][0]
    measured = out.series["eq2_measured"][0]
    assert abs(predicted - measured) / measured < 0.10
