"""Shared fixtures: small generated tables in both layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tpch import (
    apply_fig5_compression,
    generate_lineitem,
    generate_orders,
)
from repro.storage.layout import Layout
from repro.storage.loader import load_table

SMALL_ROWS = 1_500


def pytest_addoption(parser):
    parser.addoption(
        "--run-fuzz",
        action="store_true",
        default=False,
        help="run the deep differential-fuzz suite (tests marked 'fuzz')",
    )
    parser.addoption(
        "--run-chaos",
        action="store_true",
        default=False,
        help="run the deep chaos sweep (tests marked 'chaos')",
    )


def pytest_collection_modifyitems(config, items):
    skips = {}
    if not config.getoption("--run-fuzz"):
        skips["fuzz"] = pytest.mark.skip(
            reason="deep fuzz run; use --run-fuzz (or make fuzz)"
        )
    if not config.getoption("--run-chaos"):
        skips["chaos"] = pytest.mark.skip(
            reason="deep chaos run; use --run-chaos (or make chaos-deep)"
        )
    for item in items:
        for marker_name, skip in skips.items():
            if marker_name in item.keywords:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def lineitem_data():
    return generate_lineitem(SMALL_ROWS, seed=101)


@pytest.fixture(scope="session")
def orders_data():
    return generate_orders(SMALL_ROWS, seed=101)


@pytest.fixture(scope="session")
def lineitem_z_data(lineitem_data):
    return apply_fig5_compression(lineitem_data)


@pytest.fixture(scope="session")
def orders_z_data(orders_data):
    return apply_fig5_compression(orders_data)


@pytest.fixture(scope="session")
def lineitem_row(lineitem_data):
    return load_table(lineitem_data, Layout.ROW)


@pytest.fixture(scope="session")
def lineitem_column(lineitem_data):
    return load_table(lineitem_data, Layout.COLUMN)


@pytest.fixture(scope="session")
def orders_row(orders_data):
    return load_table(orders_data, Layout.ROW)


@pytest.fixture(scope="session")
def orders_column(orders_data):
    return load_table(orders_data, Layout.COLUMN)


@pytest.fixture(scope="session")
def orders_z_column(orders_z_data):
    return load_table(orders_z_data, Layout.COLUMN)


@pytest.fixture(scope="session")
def orders_z_row(orders_z_data):
    return load_table(orders_z_data, Layout.ROW)


@pytest.fixture
def rng():
    return np.random.default_rng(7)
