"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table schema is malformed or an attribute reference is invalid."""


class StorageError(ReproError):
    """A page, file, or table is malformed or used inconsistently."""


class PageFormatError(StorageError):
    """Raised when decoding a page whose bytes do not match the layout."""


class PageOverflowError(StorageError):
    """Raised when appending a value to a page that has no room left."""


class CompressionError(ReproError):
    """A codec cannot encode the given values or decode the given bytes."""


class EngineError(ReproError):
    """A query plan is malformed or an operator is misused."""


class PlanError(EngineError):
    """A query references attributes or tables that do not exist."""


class SimulationError(ReproError):
    """The I/O or CPU simulator was configured or driven inconsistently."""


class CalibrationError(ReproError):
    """Analytical-model calibration was given unusable measurements."""
