"""Operator span tracing: per-plan-node wall time and cost attribution.

The engine counts its micro-work in one plan-global
:class:`~repro.cpusim.events.CostEvents`; this module splits that total
back out **per operator**.  :class:`SpanTracer` hangs off
:attr:`~repro.engine.context.ExecutionContext.tracer` and the base
:class:`~repro.engine.operators.base.Operator` calls
:meth:`SpanTracer.enter` / :meth:`SpanTracer.exit` around every public
``open()`` / ``next()`` / ``close()``.  Each call window records:

* wall-clock duration (``perf_counter_ns``);
* the *delta* of the shared ``CostEvents`` across the window, with the
  inclusive deltas of any nested (child-operator) windows subtracted
  out, so a span's :attr:`OperatorSpan.events` is its **exclusive**
  work and the exclusive events of all spans sum exactly to the
  plan-total ``CostEvents``;
* blocks and rows produced (for ``next()`` windows).

With ``context.tracer is None`` (the default) the operator layer takes
an untraced fast path — one attribute load and a branch per call.

Aggregated spans feed :mod:`repro.obs.explain` (EXPLAIN ANALYZE text)
and :mod:`repro.obs.export` (Chrome ``trace_event`` JSON, flat
profiles); the raw per-call :class:`TraceSlice` list feeds the Chrome
timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.cpusim.events import CostEvents

__all__ = ["OperatorSpan", "SpanTracer", "TraceSlice"]


@dataclass(frozen=True)
class TraceSlice:
    """One timed operator call (an ``X`` event in Chrome trace terms)."""

    span_id: int
    name: str
    phase: str        #: ``open`` | ``next`` | ``close``
    start_ns: int     #: relative to the tracer's epoch
    duration_ns: int
    #: Execution track: 0 is the parent query thread; parallel worker
    #: processes get tracks 1..N (rendered as separate Perfetto threads).
    track: int = 0


@dataclass
class OperatorSpan:
    """Aggregated measurements for one plan node across one (or more)
    executions under the same tracer."""

    span_id: int
    name: str                 #: operator class name
    detail: str = ""          #: operator-provided annotation
    children: list["OperatorSpan"] = field(default_factory=list)
    open_ns: int = 0          #: inclusive wall time in ``open()``
    next_ns: int = 0          #: inclusive wall time across ``next()`` calls
    close_ns: int = 0         #: inclusive wall time in ``close()``
    self_ns: int = 0          #: exclusive wall time (children subtracted)
    next_calls: int = 0
    blocks: int = 0           #: non-empty blocks returned by ``next()``
    rows: int = 0             #: tuples across those blocks
    #: Exclusive cost-event delta: work this node did itself.
    events: CostEvents = field(default_factory=CostEvents)

    @property
    def wall_ns(self) -> int:
        """Inclusive wall time across all three phases."""
        return self.open_ns + self.next_ns + self.close_ns

    def inclusive_events(self) -> CostEvents:
        """This node's events plus everything below it."""
        total = CostEvents()
        total.merge(self.events)
        for child in self.children:
            total.merge(child.inclusive_events())
        return total

    def walk(self):
        """Yield ``(span, depth)`` preorder."""
        stack = [(self, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))


class _Frame:
    """One in-flight traced call on the tracer's stack."""

    __slots__ = ("span", "phase", "start_ns", "mark", "child_incl", "child_wall_ns")

    def __init__(self, span: OperatorSpan, phase: str, start_ns: int, mark: CostEvents):
        self.span = span
        self.phase = phase
        self.start_ns = start_ns
        self.mark = mark
        self.child_incl = CostEvents()
        self.child_wall_ns = 0


class SpanTracer:
    """Collects an operator span tree plus raw timeline slices.

    Spans are keyed by operator identity, so re-executing the same plan
    object under one tracer accumulates into the same tree.
    """

    def __init__(self, record_slices: bool = True, max_slices: int = 200_000):
        self.roots: list[OperatorSpan] = []
        self.record_slices = record_slices
        self.max_slices = max_slices
        self.slices: list[TraceSlice] = []
        self.dropped_slices = 0
        self.epoch_ns = time.perf_counter_ns()
        self._spans: dict[int, OperatorSpan] = {}
        self._stack: list[_Frame] = []
        self._next_id = 1

    # --- span registry -----------------------------------------------------

    def span_for(self, operator) -> OperatorSpan:
        """The span for one operator, created (and parented) on first use."""
        key = id(operator)
        span = self._spans.get(key)
        if span is None:
            span = OperatorSpan(
                span_id=self._next_id,
                name=type(operator).__name__,
                detail=operator.describe(),
            )
            self._next_id += 1
            self._spans[key] = span
            if self._stack:
                self._stack[-1].span.children.append(span)
            else:
                self.roots.append(span)
        return span

    def spans(self) -> list[OperatorSpan]:
        """Every span, preorder from the roots."""
        return [span for root in self.roots for span, _ in root.walk()]

    # --- call windows ------------------------------------------------------

    def enter(self, operator, phase: str) -> _Frame:
        """Begin a traced call; returns the frame to pass to :meth:`exit`."""
        frame = _Frame(
            self.span_for(operator),
            phase,
            time.perf_counter_ns(),
            operator.context.events.snapshot(),
        )
        self._stack.append(frame)
        return frame

    def exit(self, frame: _Frame, events: CostEvents, rows: int = 0, blocks: int = 0) -> None:
        """End a traced call, attributing its wall time and event delta."""
        duration_ns = time.perf_counter_ns() - frame.start_ns
        top = self._stack.pop()
        if top is not frame:  # pragma: no cover - defensive
            raise RuntimeError("span tracer stack corrupted (unbalanced enter/exit)")
        inclusive = events.diff(frame.mark)
        span = frame.span
        span.events.merge(inclusive.diff(frame.child_incl))
        span.self_ns += duration_ns - frame.child_wall_ns
        if frame.phase == "open":
            span.open_ns += duration_ns
        elif frame.phase == "close":
            span.close_ns += duration_ns
        else:
            span.next_ns += duration_ns
            span.next_calls += 1
        span.blocks += blocks
        span.rows += rows
        if self._stack:
            parent = self._stack[-1]
            parent.child_incl.merge(inclusive)
            parent.child_wall_ns += duration_ns
        if self.record_slices:
            if len(self.slices) < self.max_slices:
                self.slices.append(
                    TraceSlice(
                        span_id=span.span_id,
                        name=span.name,
                        phase=frame.phase,
                        start_ns=frame.start_ns - self.epoch_ns,
                        duration_ns=duration_ns,
                    )
                )
            else:
                self.dropped_slices += 1

    # --- cross-process stitching -------------------------------------------

    def attach_subtree(
        self,
        roots: list[OperatorSpan],
        slices: list[TraceSlice],
        track: int = 0,
        under: OperatorSpan | None = None,
        epoch_ns: int | None = None,
    ) -> None:
        """Graft spans recorded by another tracer into this tree.

        Used by :mod:`repro.engine.parallel` to stitch worker-process
        span trees into the parent trace.  Span ids are renumbered into
        this tracer's id space (and slice span ids remapped to match);
        slices are tagged with ``track`` so exporters can render each
        worker on its own thread.  When the worker tracer's ``epoch_ns``
        is given, slice timestamps are rebased onto this tracer's epoch
        (``perf_counter_ns`` is machine-wide monotonic, so forked
        workers share the clock).  ``under`` parents the subtree below
        an existing span — e.g. the gather node that consumed the
        workers' output — keeping ``total_events()`` equal to the
        parent-context plan total.
        """
        mapping: dict[int, int] = {}

        def renumber(span: OperatorSpan) -> None:
            mapping[span.span_id] = self._next_id
            span.span_id = self._next_id
            self._next_id += 1
            for child in span.children:
                renumber(child)

        for root in roots:
            renumber(root)
        if under is not None:
            under.children.extend(roots)
        else:
            self.roots.extend(roots)
        if not self.record_slices:
            return
        offset = 0 if epoch_ns is None else epoch_ns - self.epoch_ns
        for piece in slices:
            if len(self.slices) >= self.max_slices:
                self.dropped_slices += 1
                continue
            self.slices.append(
                replace(
                    piece,
                    span_id=mapping.get(piece.span_id, piece.span_id),
                    start_ns=piece.start_ns + offset,
                    track=track,
                )
            )

    # --- aggregates --------------------------------------------------------

    def total_events(self) -> CostEvents:
        """Sum of every span's exclusive events.

        Equals the plan-total ``CostEvents`` when the context's counters
        started at zero: every counter mutation happens inside some
        operator's open/next/close window, and exclusive deltas
        partition each window's inclusive delta.
        """
        total = CostEvents()
        for root in self.roots:
            total.merge(root.inclusive_events())
        return total

    @property
    def total_wall_ns(self) -> int:
        return sum(root.wall_ns for root in self.roots)
