"""Figure 9 — compression (ORDERS-Z), FOR vs FOR-delta."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import fig09_compression


def bench_figure9_compression(benchmark):
    out = run_once(benchmark, lambda: fig09_compression.run(num_rows=BENCH_ROWS))
    publish(out, "figure_09_compression.txt")

    # The compressed column store is CPU-bound: elapsed tracks CPU.
    delta_elapsed = out.series["col_delta_elapsed"]
    delta_cpu = out.series["col_delta_cpu"]
    assert all(abs(e - c) < 0.02 * e for e, c in zip(delta_elapsed, delta_cpu))
    # FOR-delta's whole-page decode jumps when attribute #2 arrives.
    jump_delta = delta_cpu[1] - delta_cpu[0]
    jump_for = out.series["col_for_cpu"][1] - out.series["col_for_cpu"][0]
    assert jump_delta > jump_for
    # The row store shows its first CPU rise, from decompression.
    assert out.series["row_cpu"][-1] > out.series["row_cpu"][0]
    # The crossover moved left: the column store loses before full
    # projectivity on this compressed narrow table.
    losing = [
        c > r
        for c, r in zip(delta_elapsed, out.series["row_elapsed"])
    ]
    assert any(losing[:-1])
