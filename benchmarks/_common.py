"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures: it runs the experiment once under ``pytest-benchmark``, prints
the regenerated rows (the same series the paper reports), saves them
under ``benchmarks/results/``, and asserts the paper's qualitative
shape so a regression in the reproduction fails the bench.
"""

from __future__ import annotations

import pathlib

from repro.experiments.report import ExperimentOutput

#: Materialized rows the engine executes on during benches.  Event
#: counts are scaled to the paper's 60 M; this just sets bench runtime.
BENCH_ROWS = 4_000

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def run_once(benchmark, fn) -> ExperimentOutput:
    """Time one full regeneration of an experiment."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def publish(output: ExperimentOutput, filename: str) -> None:
    """Print the regenerated figure and persist it under results/."""
    text = output.render()
    print()
    print(text)
    # parents=True so a single bench runs standalone on a fresh clone,
    # where results/ (untracked) does not exist yet.
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
