"""Hybrid read path: overlay a write store's edits on base-table scans.

This is the glue between the write-optimized store and every read
architecture in the engine.  A :class:`HybridOverlay` is an immutable
snapshot of one table's pending edits, precomputed per query:

* a deleted-mask and prefix-count *shift* array over global positions,
  so base-scan output can be filtered and remapped vectorized;
* the staged rows already projected to the query's select list,
  filtered by its predicates, and positioned at rebuilt-table
  coordinates.

The overlay is applied in one of two ways, chosen by the execution
path:

* **operator-level** (:func:`run_hybrid_scan`): the serial path wraps
  the ordinary scan plan in ``HybridUnion(base, DeltaScan)`` so the
  hybrid work is traced/governed like any other plan node;
* **post-hoc** (:meth:`HybridOverlay.apply`): the parallel, scheduled,
  and shared-scan paths run the base plan unchanged (their plumbing —
  partitioning, timeslicing, scan sharing — neither knows nor cares
  about deltas) and transform the materialized result afterwards.

Both produce byte-identical output because the transformation is
per-row and order-preserving.  :func:`run_scan_with_store` is the
drop-in replacement for :func:`~repro.engine.executor.run_scan`: with
no pending edits it falls through to the plain scan (one predicate
check — this is the candidate arm of the empty-delta overhead gate in
``benchmarks/check_tracing_overhead.py``).

Snapshot semantics: an overlay captures the store's state at build
time (the delete mask and staged columns are copied), so a query keeps
its view even if writes land while a scheduled query is in flight.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult, execute_plan, run_scan
from repro.engine.operators.delta import DeltaScan, HybridUnion
from repro.engine.plan import ColumnScannerKind, scan_plan
from repro.engine.query import ScanQuery
from repro.engine.blocks import Block
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.write_store import WriteOptimizedStore


class HybridOverlay:
    """One table's pending edits, snapshotted and query-projected."""

    __slots__ = (
        "base_rows",
        "total_rows",
        "num_deleted",
        "deleted",
        "shift",
        "delta_columns",
        "delta_positions",
    )

    def __init__(
        self,
        base_rows: int,
        total_rows: int,
        deleted: np.ndarray | None,
        shift: np.ndarray,
        delta_columns: dict[str, np.ndarray],
        delta_positions: np.ndarray,
    ):
        self.base_rows = base_rows
        self.total_rows = total_rows
        self.deleted = deleted
        self.num_deleted = 0 if deleted is None else int(deleted.sum())
        self.shift = shift
        self.delta_columns = delta_columns
        self.delta_positions = delta_positions

    def transform_base_block(self, block: Block) -> Block:
        """Filter deleted base rows out of one block and remap positions."""
        if len(block) == 0:
            return block
        positions = block.positions
        if self.deleted is not None:
            keep = ~self.deleted[positions]
            if not keep.all():
                block = block.take(keep)
                positions = block.positions
            if len(block) == 0:
                return block
        remapped = positions.astype(np.int64, copy=True)
        remapped -= self.shift[positions]
        return Block(columns=block.columns, positions=remapped)

    def apply(self, result: QueryResult) -> QueryResult:
        """Overlay a materialized base-scan result (post-hoc form).

        Same transformation :class:`~repro.engine.operators.delta.
        HybridUnion` performs block-at-a-time, applied once to the
        collected output: drop deleted base rows, shift survivors to
        rebuilt-table positions, append the qualifying delta rows.
        """
        positions = result.positions
        columns = result.columns
        if self.deleted is not None and len(positions):
            keep = ~self.deleted[positions]
            if not keep.all():
                positions = positions[keep]
                columns = {name: col[keep] for name, col in columns.items()}
        remapped = positions.astype(np.int64, copy=True)
        if len(positions):
            remapped -= self.shift[positions]
        if len(self.delta_positions):
            remapped = np.concatenate([remapped, self.delta_positions])
            columns = {
                name: np.concatenate([col, self.delta_columns[name]])
                for name, col in columns.items()
            }
        return QueryResult(
            columns=columns,
            positions=remapped,
            events=result.events,
            corruption=result.corruption,
        )


def build_overlay(store: "WriteOptimizedStore", query: ScanQuery) -> HybridOverlay:
    """Snapshot a store's edits, projected through one query.

    Staged rows are filtered here — deleted-again staged rows dropped,
    the query's predicates evaluated vectorized on the staged columns —
    so the operators downstream only stream precomputed arrays.
    """
    base_rows = store.base_rows
    total_rows = store.total_rows
    deletes = store.deletes
    shift = deletes.cumulative()
    deleted = None if deletes.is_empty else deletes.mask()
    staged = store.staged_columns()
    num_staged = total_rows - base_rows
    if num_staged:
        live = np.ones(num_staged, dtype=bool)
        if deleted is not None:
            live &= ~deleted[base_rows:total_rows]
        for predicate in query.predicates:
            live &= predicate.evaluate(staged[predicate.attr])
        picked = np.flatnonzero(live)
        global_positions = base_rows + picked.astype(np.int64)
        delta_positions = global_positions - shift[global_positions]
        delta_columns = {
            name: staged[name][picked] for name in query.select
        }
    else:
        delta_positions = np.zeros(0, dtype=np.int64)
        delta_columns = {}
    # deleted is snapshot-stable: mask()/cumulative() already copied out
    # of the bitmap, and staged column arrays are built fresh per call.
    return HybridOverlay(
        base_rows=base_rows,
        total_rows=total_rows,
        deleted=deleted,
        shift=shift,
        delta_columns=delta_columns,
        delta_positions=delta_positions,
    )


def hybrid_plan(
    context: ExecutionContext,
    table: Table,
    query: ScanQuery,
    overlay: HybridOverlay,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
) -> HybridUnion:
    """Wrap the ordinary scan plan in the hybrid operator layer."""
    base = scan_plan(context, table, query, column_scanner)
    delta = DeltaScan(context, overlay)
    return HybridUnion(context, base, delta, overlay)


def run_hybrid_scan(
    table: Table,
    query: ScanQuery,
    overlay: HybridOverlay,
    context: ExecutionContext | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    salvage: bool = False,
) -> QueryResult:
    """Plan and execute one scan with the overlay as an operator layer."""
    context = context or ExecutionContext()
    if salvage:
        context.strict_integrity = False
    plan = hybrid_plan(context, table, query, overlay, column_scanner)
    return execute_plan(plan)


def run_scan_with_store(
    table: Table,
    query: ScanQuery,
    store: "WriteOptimizedStore | None",
    context: ExecutionContext | None = None,
    column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
    salvage: bool = False,
) -> QueryResult:
    """Serial scan that sees the write store's pending edits, if any.

    The empty-delta fall-through is the whole fast path: one attribute
    load and one predicate check before handing off to the unchanged
    :func:`run_scan`, which the paired overhead gate holds under 5%.
    """
    if store is None or not store.has_changes:
        return run_scan(table, query, context, column_scanner, salvage)
    overlay = build_overlay(store, query)
    return run_hybrid_scan(table, query, overlay, context, column_scanner, salvage)
