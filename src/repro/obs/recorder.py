"""Flight recorder: a bounded ring of workload lifecycle events.

Single-query observability (spans, EXPLAIN ANALYZE, cumulative
counters) answers "what did *this* plan do"; the flight recorder
answers "what was the *workload* doing when things went wrong".  It is
a fixed-capacity ring buffer of small structured events — admission,
time slices, shared-scan attach/wrap/detach, governance aborts, storage
retries, salvaged pages, circuit-breaker trips, parallel-worker crashes
and degradations — emitted by the scheduler, the sharing layer,
governance, the parallel supervisor, and the storage retry policy.

The recorder is **on by default** and built to stay under the same
<5% budget the tracing and governance layers are held to (a third
paired gate in ``benchmarks/check_tracing_overhead.py`` measures it):
recording one event is a guard branch, a monotonic clock read, and one
``deque.append``; the ring evicts oldest-first so memory is bounded no
matter how long the process serves.  ``disable()`` turns every
``record()`` into an early return.  Appends are plain CPython deque
operations — atomic under the GIL — so no lock is taken anywhere.

**Black boxes.**  On any query failure — a governance abort, a decode
error, a chaos-injected kill — the failing query's *event slice* (every
ring event carrying its label), its governance snapshot, its span tree
(when traced), and a provenance stamp are frozen into one JSON-ready
black-box dict, exactly one per failure.  The scheduler dumps one for
every failed handle; the chaos harness dumps one per raised case and
stamps it with the ``python -m repro.testing.chaos --seed N`` replay
command, so a black box found in a CI artifact can be re-run to the
same typed error.  :meth:`repro.database.Database.flight_recorder` and
:meth:`~repro.database.Database.dump_blackbox` expose both from the
facade.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from dataclasses import dataclass

__all__ = [
    "FlightRecorder",
    "RECORDER",
    "RecorderEvent",
    "disable",
    "enable",
    "enabled",
    "record",
]

#: Module-global switch, mirroring :mod:`repro.obs.metrics`: checked by
#: every :func:`record` call so a disabled recorder costs one attribute
#: load plus a branch per emit site.
_enabled = True


def enabled() -> bool:
    """Whether lifecycle events are currently recorded."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """No-op mode: every :func:`record` returns immediately."""
    global _enabled
    _enabled = False


@dataclass(frozen=True)
class RecorderEvent:
    """One structured lifecycle event in the ring.

    ``kind`` is a dotted ``layer.event`` name (``scheduler.submit``,
    ``share.wrap``, ``governance.timeout``, ``storage.retry``, ...);
    ``query`` is the emitting query's governance label (``None`` for
    events with no query attribution, e.g. storage retries below the
    engine); ``detail`` carries the small JSON-able payload.
    """

    seq: int
    #: ``time.monotonic_ns()`` at emit; comparable within one process.
    ts_ns: int
    kind: str
    query: str | None
    detail: dict

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts_ns": self.ts_ns,
            "kind": self.kind,
            "query": self.query,
            "detail": dict(self.detail),
        }


class FlightRecorder:
    """A bounded, oldest-evicting ring of :class:`RecorderEvent`.

    Sequence numbers keep growing across evictions (and across
    :meth:`clear`), so event ordering survives ring churn and black-box
    file names never collide.
    """

    def __init__(self, capacity: int = 4096, max_blackboxes: int = 64):
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._ring: deque[RecorderEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: Events evicted from the ring (oldest-first) since construction.
        self.evicted = 0
        #: Black-box dicts, newest last, bounded like the ring.
        self.blackboxes: deque[dict] = deque(maxlen=max_blackboxes)
        self._blackbox_seq = 0

    # --- recording --------------------------------------------------------

    def record(self, kind: str, query: str | None = None, **detail) -> None:
        """Append one event, evicting the oldest when full."""
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(
            RecorderEvent(self._seq, time.monotonic_ns(), kind, query, detail)
        )
        self._seq += 1

    def __len__(self) -> int:
        return len(self._ring)

    def events(
        self, kind: str | None = None, query: str | None = None
    ) -> list[RecorderEvent]:
        """Ring contents oldest-first, optionally filtered.

        ``kind`` matches exactly or by ``layer.`` prefix (``"share"``
        matches every ``share.*`` event); ``query`` slices one query's
        events by its governance label.
        """
        out = []
        for event in self._ring:
            if query is not None and event.query != query:
                continue
            if kind is not None and not (
                event.kind == kind or event.kind.startswith(kind + ".")
            ):
                continue
            out.append(event)
        return out

    def clear(self) -> None:
        """Drop every buffered event and black box (sequence kept)."""
        self._ring.clear()
        self.blackboxes.clear()
        self.evicted = 0

    # --- black boxes ------------------------------------------------------

    def dump_blackbox(
        self,
        query: str,
        error: BaseException | None = None,
        governance: dict | None = None,
        tracer=None,
        replay: str = "",
    ) -> dict:
        """Freeze one failure into a provenance-stamped black-box dict.

        The dict is JSON-ready: the failing query's event slice (from
        the current ring), the typed error, the governance snapshot,
        the span tree when the query was traced, and the replay command
        when the caller knows one (seeded chaos cases do).
        """
        from repro.obs.provenance import provenance

        box: dict = {
            "seq": self._blackbox_seq,
            "query": query,
            "error": None
            if error is None
            else {"type": type(error).__name__, "message": str(error)},
            "events": [event.as_dict() for event in self.events(query=query)],
            "governance": governance,
            "replay": replay,
            "provenance": provenance(),
        }
        if tracer is not None and tracer.roots:
            from repro.obs.export import flat_profile

            box["spans"] = flat_profile(tracer)
        self._blackbox_seq += 1
        self.blackboxes.append(box)
        return box

    def write_blackboxes(self, directory) -> list[pathlib.Path]:
        """Write every held black box as ``blackbox-<seq>.json``."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for box in self.blackboxes:
            path = directory / f"blackbox-{box['seq']:04d}.json"
            path.write_text(
                json.dumps(box, indent=2, default=str) + "\n", encoding="utf-8"
            )
            paths.append(path)
        return paths


#: The process-wide recorder every instrumented subsystem writes to.
RECORDER = FlightRecorder()


def record(kind: str, query: str | None = None, **detail) -> None:
    """Emit one event to the global ring (no-op while disabled)."""
    if not _enabled:
        return
    RECORDER.record(kind, query, **detail)
