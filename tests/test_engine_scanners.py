"""Scanner tests: row, pipelined column, fused column.

The central invariant of the paper's methodology: both scanners produce
their output in exactly the same format and are interchangeable inside
the query engine.
"""

import numpy as np
import pytest

from repro.engine.context import ExecutionContext
from repro.engine.executor import run_scan
from repro.engine.plan import ColumnScannerKind, scan_plan
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import ScanQuery
from repro.errors import PlanError


def query_for(prep_data, select, selectivity=0.10, pred_attr=None):
    from repro.engine.predicate import predicate_for_selectivity

    pred_attr = pred_attr or select[0]
    predicate = predicate_for_selectivity(
        pred_attr, np.asarray(prep_data.column(pred_attr)), selectivity
    )
    return ScanQuery(prep_data.schema.name, select=tuple(select), predicates=(predicate,))


class TestLayoutEquivalence:
    @pytest.mark.parametrize("selectivity", [0.0, 0.001, 0.10, 0.5, 1.0])
    def test_row_column_fused_identical(
        self, lineitem_data, lineitem_row, lineitem_column, selectivity
    ):
        select = ("L_PARTKEY", "L_SHIPMODE", "L_QUANTITY", "L_COMMENT")
        query = query_for(lineitem_data, select, selectivity)
        results = [
            run_scan(lineitem_row, query),
            run_scan(lineitem_column, query),
            run_scan(lineitem_column, query, column_scanner=ColumnScannerKind.FUSED),
        ]
        for other in results[1:]:
            assert other.num_tuples == results[0].num_tuples
            np.testing.assert_array_equal(other.positions, results[0].positions)
            for name in select:
                np.testing.assert_array_equal(
                    other.column(name), results[0].column(name)
                )

    def test_compressed_layouts_match_uncompressed(
        self, lineitem_data, lineitem_row, lineitem_z_data
    ):
        from repro.storage.layout import Layout
        from repro.storage.loader import load_table

        select = ("L_PARTKEY", "L_ORDERKEY", "L_DISCOUNT")
        query = query_for(lineitem_data, select, 0.10)
        reference = run_scan(lineitem_row, query)
        for layout in (Layout.ROW, Layout.COLUMN):
            table = load_table(lineitem_z_data, layout)
            query_z = ScanQuery(
                lineitem_z_data.schema.name,
                select=select,
                predicates=query.predicates,
            )
            result = run_scan(table, query_z)
            assert result.num_tuples == reference.num_tuples
            for name in select:
                np.testing.assert_array_equal(
                    result.column(name), reference.column(name)
                )

    def test_predicate_on_unselected_attribute(
        self, orders_data, orders_row, orders_column
    ):
        query = query_for(
            orders_data,
            select=("O_CUSTKEY", "O_TOTALPRICE"),
            selectivity=0.2,
            pred_attr="O_ORDERDATE",
        )
        a = run_scan(orders_row, query)
        b = run_scan(orders_column, query)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.column("O_CUSTKEY"), b.column("O_CUSTKEY"))
        assert "O_ORDERDATE" not in a.columns

    def test_multiple_predicates(self, orders_data, orders_row, orders_column):
        p1 = Predicate("O_ORDERDATE", ComparisonOp.LE, 9_500)
        p2 = Predicate("O_TOTALPRICE", ComparisonOp.GE, 1_000_000)
        query = ScanQuery(
            "ORDERS",
            select=("O_ORDERDATE", "O_TOTALPRICE", "O_CUSTKEY"),
            predicates=(p1, p2),
        )
        a = run_scan(orders_row, query)
        b = run_scan(orders_column, query)
        expected = np.flatnonzero(
            (orders_data.column("O_ORDERDATE") <= 9_500)
            & (orders_data.column("O_TOTALPRICE") >= 1_000_000)
        )
        np.testing.assert_array_equal(a.positions, expected)
        np.testing.assert_array_equal(b.positions, expected)


class TestScannerBehaviour:
    def test_positions_are_record_ids(self, orders_data, orders_column):
        query = query_for(orders_data, ("O_ORDERDATE", "O_CUSTKEY"), 0.10)
        result = run_scan(orders_column, query)
        # Positions index into the original table order.
        dates = orders_data.column("O_ORDERDATE")
        np.testing.assert_array_equal(
            result.column("O_ORDERDATE"), dates[result.positions]
        )

    def test_no_predicates_returns_everything(self, orders_data, orders_row):
        query = ScanQuery("ORDERS", select=("O_CUSTKEY",))
        result = run_scan(orders_row, query)
        assert result.num_tuples == orders_data.num_rows

    def test_empty_result(self, orders_data, orders_column):
        query = query_for(orders_data, ("O_ORDERDATE", "O_CUSTKEY"), 0.0)
        result = run_scan(orders_column, query)
        assert result.num_tuples == 0
        assert result.column("O_CUSTKEY").size == 0

    def test_unknown_attribute_rejected(self, orders_row):
        query = ScanQuery("ORDERS", select=("NOPE",))
        with pytest.raises(Exception):
            run_scan(orders_row, query)

    def test_scan_node_order_puts_predicates_deepest(
        self, orders_data, orders_column
    ):
        context = ExecutionContext()
        query = query_for(
            orders_data,
            select=("O_CUSTKEY", "O_TOTALPRICE"),
            selectivity=0.1,
            pred_attr="O_ORDERDATE",
        )
        plan = scan_plan(context, orders_column, query)
        assert plan.scan_attribute_order()[0] == "O_ORDERDATE"

    def test_next_before_open_rejected(self, orders_column, orders_data):
        from repro.errors import EngineError

        context = ExecutionContext()
        query = query_for(orders_data, ("O_ORDERDATE",), 0.1)
        plan = scan_plan(context, orders_column, query)
        with pytest.raises(EngineError):
            plan.next()

    def test_block_size_respected(self, orders_data, orders_row):
        context = ExecutionContext(block_size=37)
        query = query_for(orders_data, ("O_ORDERDATE", "O_CUSTKEY"), 0.5)
        plan = scan_plan(context, orders_row, query)
        blocks = plan.drain()
        assert all(len(b) <= 37 for b in blocks)


class TestScannerEvents:
    def test_row_scanner_examines_every_tuple(self, orders_data, orders_row):
        context = ExecutionContext()
        query = query_for(orders_data, ("O_ORDERDATE",), 0.1)
        run_scan(orders_row, query, context)
        assert context.events.tuples_examined == orders_data.num_rows
        assert context.events.predicate_evals == orders_data.num_rows

    def test_row_memory_traffic_is_whole_table(self, orders_data, orders_row):
        context = ExecutionContext()
        few = query_for(orders_data, ("O_ORDERDATE",), 0.1)
        run_scan(orders_row, few, context)
        lines_few = context.events.mem_seq_lines

        context2 = ExecutionContext()
        all_attrs = query_for(
            orders_data, tuple(orders_data.schema.attribute_names), 0.1,
            pred_attr="O_ORDERDATE",
        )
        run_scan(orders_row, all_attrs, context2)
        # The row store touches the same lines no matter the projection.
        assert context2.events.mem_seq_lines == lines_few

    def test_column_scanner_later_nodes_proportional_to_selectivity(
        self, orders_data, orders_column
    ):
        hi = ExecutionContext()
        run_scan(
            orders_column,
            query_for(orders_data, ("O_ORDERDATE", "O_CUSTKEY"), 0.5),
            hi,
        )
        lo = ExecutionContext()
        run_scan(
            orders_column,
            query_for(orders_data, ("O_ORDERDATE", "O_CUSTKEY"), 0.01),
            lo,
        )
        assert lo.events.positions_processed < hi.events.positions_processed / 10

    def test_column_sparse_access_is_random_lines(self, orders_data, orders_column):
        lo = ExecutionContext()
        run_scan(
            orders_column,
            query_for(orders_data, ("O_ORDERDATE", "O_CUSTKEY"), 0.001),
            lo,
        )
        hi = ExecutionContext()
        run_scan(
            orders_column,
            query_for(orders_data, ("O_ORDERDATE", "O_CUSTKEY"), 0.9),
            hi,
        )
        # Dense second column -> sequential; sparse -> random misses.
        assert hi.events.mem_rand_lines == 0
        assert lo.events.mem_rand_lines > 0

    def test_for_delta_decodes_whole_pages(self, orders_z_data, orders_z_column):
        context = ExecutionContext()
        query = query_for(
            orders_z_data,
            ("O_ORDERDATE", "O_ORDERKEY"),
            0.001,
        )
        run_scan(orders_z_column, query, context)
        from repro.compression.base import CodecKind

        decoded = context.events.values_decoded
        # O_ORDERKEY (FOR-delta) decodes every value despite 0.1% sel.
        assert decoded.get(CodecKind.FOR_DELTA, 0) == orders_z_data.num_rows
