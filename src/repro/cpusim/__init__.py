"""CPU and memory-hierarchy cost simulation.

The engine executes real work on real data and counts *events* (tuples
examined, values decoded per scheme, bytes copied, cache lines touched
sequentially or randomly, I/O units issued).  This package converts
those events into the paper's CPU-time breakdown for a Pentium 4-class
machine: ``sys``, ``usr-uop`` (instructions / 3), ``usr-L2``
(prefetcher-aware memory stalls net of overlap), ``usr-L1`` (upper
bound), and ``usr-rest``.
"""

from repro.cpusim.breakdown import CpuBreakdown
from repro.cpusim.cache import line_coverage, lines_touched
from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cpusim.costmodel import CpuModel
from repro.cpusim.events import CostEvents

__all__ = [
    "CostEvents",
    "CpuBreakdown",
    "CpuModel",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "lines_touched",
    "line_coverage",
]
