"""Concurrent multi-query scheduler: admission, time-slicing, sharing.

The paper's experiments run one query at a time; a serving system runs
many.  This module adds the workload layer on top of the existing
serial operator engine without threads: queries are **cooperatively
time-sliced** — the scheduler round-robins one operator ``next()``
call (or, for shared scans, one stream segment) per active query per
round, exactly the block-granular cooperation the governance layer
already checkpoints on.

* **Admission control** — at most ``max_inflight`` queries execute at
  once; the rest wait in a FIFO queue.  A query's governance deadline
  starts at *submit* time, so queue time counts against it and a query
  whose deadline lapses while queued fails fast with
  :class:`~repro.errors.QueryTimeout` without ever running.
* **Shared scans** — co-running queries over the same table and column
  set attach to one circular :class:`~repro.engine.sharing.
  SharedScanStream` (I/O once, per-consumer CPU), mirroring the
  Figure 11 competing-scans model (:func:`repro.iosim.sharing.
  measure_competing_scans`).
* **Isolation** — each query runs under its own
  :class:`~repro.engine.context.ExecutionContext` and
  :class:`~repro.engine.governance.QueryContext`; one query's timeout,
  cancel, or decode failure detaches it without disturbing its
  scan-share peers.
* **Observability** — ``repro_scheduler_*`` metrics (queue depth,
  admission waits, share hit-rate, in-flight gauge, windowed latency
  quantiles + qps), flight-recorder lifecycle events with a black-box
  dump per failed query (:mod:`repro.obs.recorder`), a per-batch
  slow-query log (:mod:`repro.obs.slowlog`), and, with ``trace=True``,
  one span track per query stitched into a single scheduler-level
  :class:`~repro.obs.trace.SpanTracer`.

**Attribution under interleaving.**  Although many queries co-run,
per-query accounting never crosses: each admitted query gets its own
``ExecutionContext`` (its own CostEvents) and, when tracing, its own
``SpanTracer``, so a timeslice granted to query A mutates only A's
events and spans regardless of what B did the round before.  The
process-global metrics REGISTRY intentionally sees the *sum* — it is
workload-level by contract.  ``tests/test_scheduler_telemetry.py``
pins both properties.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.engine.blocks import concat_blocks
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryResult
from repro.engine.governance import CancellationToken, QueryContext
from repro.engine.plan import ColumnScannerKind, scan_plan
from repro.engine.query import ScanQuery
from repro.engine.sharing import ScanShareManager, SharedScanConsumer
from repro.errors import EngineError, PlanError, ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.trace import SpanTracer
from repro.storage.table import Table

__all__ = ["JobHandle", "QueryHandle", "QueryState", "Scheduler", "WorkloadQuery"]


class QueryState(Enum):
    """Lifecycle of one submitted query."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class WorkloadQuery:
    """One declarative request of a :meth:`repro.database.Database.
    run_workload` batch."""

    table: str
    select: tuple[str, ...]
    predicates: tuple = ()
    timeout: float | None = None
    memory_budget: int | None = None
    salvage: bool = False
    label: str = ""


class QueryHandle:
    """A submitted query: its state, timing, and (eventually) result."""

    def __init__(
        self,
        index: int,
        scheduler: "Scheduler",
        table: Table,
        query: ScanQuery,
        governance: QueryContext,
        salvage: bool,
        column_scanner: ColumnScannerKind,
    ):
        self.index = index
        self.table = table
        self.query = query
        self.governance = governance
        self.salvage = salvage
        self.column_scanner = column_scanner
        self.state = QueryState.QUEUED
        self.result: QueryResult | None = None
        self.error: Exception | None = None
        #: True when the query rode a shared scan stream.
        self.shared = False
        #: Cooperative timeslices granted so far.
        self.slices = 0
        #: Command that reproduces this query's failure (chaos cases
        #: stamp ``python -m repro.testing.chaos --seed N`` here; it
        #: rides into the black-box dump on failure).
        self.replay = ""
        #: Optional result transform applied before the result lands
        #: (the hybrid write path's overlay application).
        self.post: Callable[[QueryResult], QueryResult] | None = None
        self.submitted_at = time.monotonic()
        self.admitted_at: float | None = None
        self.finished_at: float | None = None
        self._scheduler = scheduler
        self._tracer: SpanTracer | None = None

    @property
    def done(self) -> bool:
        return self.state in (QueryState.DONE, QueryState.FAILED)

    @property
    def queue_seconds(self) -> float | None:
        """Time spent waiting for admission (None while still queued)."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall seconds (queue time included)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Trip this query's cancellation token (cooperative)."""
        self.governance.token.cancel(reason)

    def wait(self) -> "QueryHandle":
        """Drive the scheduler until this query finishes; never raises."""
        self._scheduler.run_until(self)
        return self

    def value(self) -> QueryResult:
        """The result, driving the scheduler as needed; raises on failure."""
        self.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class JobHandle:
    """A background maintenance job (e.g. an incremental merge).

    Jobs share the scheduler's cooperative loop: one generator step per
    :meth:`Scheduler.poll` round, interleaved with query timeslices, so
    a long merge proceeds while in-flight queries keep finishing on the
    snapshot they started on.
    """

    def __init__(self, index: int, label: str, gen):
        self.index = index
        self.label = label
        self._gen = gen
        self.steps = 0
        self.done = False
        self.error: Exception | None = None
        self.result = None

    @property
    def failed(self) -> bool:
        return self.error is not None


class Scheduler:
    """Cooperative multi-query executor over the serial engine.

    Single-threaded by design: concurrency here means *interleaving*,
    which is what makes every scheduled execution byte-reproducible and
    lets the equivalence suite diff each query against its serial
    oracle run.  Only plain scan queries (projection + conjunctive
    predicates) are schedulable; plans with materializing operators go
    through :meth:`repro.database.Database.query` as before.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        share_scans: bool = True,
        column_scanner: ColumnScannerKind = ColumnScannerKind.PIPELINED,
        trace: bool = False,
        slowlog: SlowQueryLog | None = None,
    ):
        if max_inflight < 1:
            raise PlanError(f"max_inflight must be >= 1: {max_inflight}")
        self.max_inflight = max_inflight
        self.share_scans = share_scans
        self.column_scanner = column_scanner
        self.manager = ScanShareManager()
        #: Per-query span trees land here, one track per query index.
        self.tracer: SpanTracer | None = SpanTracer() if trace else None
        #: Every finished query is offered to the batch slow-query log.
        self.slowlog = slowlog if slowlog is not None else SlowQueryLog()
        self._queue: deque[QueryHandle] = deque()
        #: ``(handle, timeslice generator, plan)`` per admitted query.
        self._active: list[tuple] = []
        self._handles: list[QueryHandle] = []
        #: Background maintenance jobs, one generator step per round.
        self._jobs: list[JobHandle] = []
        self.completed = 0
        self.failed = 0

    # --- submission -------------------------------------------------------

    def submit(
        self,
        table: Table,
        query: ScanQuery,
        timeout: float | None = None,
        memory_budget: int | None = None,
        cancellation: CancellationToken | None = None,
        salvage: bool = False,
        label: str = "",
        column_scanner: ColumnScannerKind | None = None,
        on_tick: Callable[[QueryContext], None] | None = None,
        replay: str = "",
        post: Callable[[QueryResult], QueryResult] | None = None,
    ) -> QueryHandle:
        """Enqueue one scan query; returns immediately with a handle.

        The governance deadline is anchored *now* — time spent waiting
        in the admission queue counts against ``timeout``.  ``replay``
        is an optional shell command that reproduces this submission
        (seeded harnesses pass it); it is stamped into the black-box
        dump should the query fail.  ``post`` transforms the collected
        result before it lands on the handle — the hybrid write path
        passes the overlay's ``apply`` here, snapshotted at submit
        time, so a scheduled query sees the table as of its submission
        even if writes land while it waits or runs.
        """
        governance = QueryContext.start(
            timeout=timeout,
            memory_budget=memory_budget,
            token=cancellation,
            label=label or f"scheduled query #{len(self._handles)} on {query.table}",
        )
        governance.on_tick = on_tick
        handle = QueryHandle(
            index=len(self._handles),
            scheduler=self,
            table=table,
            query=query,
            governance=governance,
            salvage=salvage,
            column_scanner=column_scanner or self.column_scanner,
        )
        handle.replay = replay
        handle.post = post
        self._handles.append(handle)
        self._queue.append(handle)
        obs_metrics.SCHEDULER_SUBMITTED.inc()
        obs_metrics.SCHEDULER_QUEUE_DEPTH.observe(len(self._queue))
        flight.record(
            "scheduler.submit",
            governance.label,
            table=query.table,
            queue_depth=len(self._queue),
        )
        return handle

    # --- admission --------------------------------------------------------

    def _admit(self) -> None:
        while self._queue and len(self._active) < self.max_inflight:
            handle = self._queue.popleft()
            handle.admitted_at = time.monotonic()
            obs_metrics.SCHEDULER_ADMISSION_WAIT.observe(handle.queue_seconds or 0.0)
            try:
                # Queue time is charged to the deadline: a query that
                # waited past it fails here without running a page.
                handle.governance.check("admission")
                plan, context = self._build_plan(handle)
            except ReproError as exc:
                self._finish_failed(handle, exc)
                continue
            handle.state = QueryState.RUNNING
            self._active.append(
                (handle, self._execute(handle, plan, context), plan)
            )
            obs_metrics.SCHEDULER_INFLIGHT.set(len(self._active))
            flight.record(
                "scheduler.admit",
                handle.governance.label,
                queue_s=round(handle.queue_seconds or 0.0, 6),
                inflight=len(self._active),
            )

    def _build_plan(self, handle: QueryHandle):
        context = ExecutionContext(governance=handle.governance)
        if handle.salvage:
            context.strict_integrity = False
        if self.tracer is not None:
            context.tracer = SpanTracer()
            handle._tracer = context.tracer
        if self.share_scans:
            plan = self.manager.acquire(handle.table, handle.query, context)
            handle.shared = True
        else:
            plan = scan_plan(
                context, handle.table, handle.query, handle.column_scanner
            )
        return plan, context

    # --- execution --------------------------------------------------------

    def _execute(self, handle: QueryHandle, plan, context: ExecutionContext):
        """Generator: one yield per cooperative timeslice."""
        plan.open()
        blocks = []
        if isinstance(plan, SharedScanConsumer):
            # Segment-granular slicing: one stream pump per timeslice
            # (a consumer may also finish passively off peers' pumps).
            while plan.advance():
                yield
        while True:
            block = plan.next()
            if block is None:
                break
            blocks.append(block)
            yield
        plan.close()
        merged = concat_blocks(blocks)
        result = QueryResult(
            columns=merged.columns,
            positions=merged.positions,
            events=context.events,
            corruption=context.corruption,
        )
        if handle.post is not None:
            result = handle.post(result)
        handle.result = result

    # --- background jobs --------------------------------------------------

    def submit_job(self, gen, label: str = "job") -> JobHandle:
        """Register a background maintenance job (a step generator).

        The generator is advanced one step per :meth:`poll` round,
        interleaved with query timeslices; its return value lands on
        ``JobHandle.result`` when it finishes.  Typed failures are
        captured on the handle (and black-boxed), never raised into the
        scheduler loop.
        """
        job = JobHandle(index=len(self._jobs), label=label, gen=gen)
        self._jobs.append(job)
        flight.record("scheduler.job.submit", label)
        return job

    def _tick_jobs(self) -> None:
        for job in self._jobs:
            if job.done:
                continue
            try:
                job.steps += 1
                next(job._gen)
            except StopIteration as stop:
                job.done = True
                job.result = stop.value
                flight.record("scheduler.job.done", job.label, steps=job.steps)
            except ReproError as exc:
                job.done = True
                job.error = exc
                flight.record(
                    "scheduler.job.failed", job.label, error=type(exc).__name__
                )
                if flight.enabled():
                    flight.RECORDER.dump_blackbox(job.label, error=exc)

    def poll(self) -> bool:
        """One scheduler round: admit, then one timeslice per active query
        and one step per background job.

        Returns True while any query is queued or running, or any
        background job is unfinished.
        """
        self._admit()
        for entry in list(self._active):
            handle, gen, plan = entry
            try:
                handle.slices += 1
                # Slice events are sampled 1-in-8: enough to see each
                # query's progress cadence in the ring without paying a
                # recorder append on every block of a long scan.
                if handle.slices & 7 == 1:
                    flight.record(
                        "scheduler.slice",
                        handle.governance.label,
                        slice=handle.slices,
                    )
                next(gen)
            except StopIteration:
                self._active.remove(entry)
                self._finish_done(handle)
            except ReproError as exc:
                self._active.remove(entry)
                self._abandon_plan(plan)
                self._finish_failed(handle, exc)
            self._admit()
        self._tick_jobs()
        return bool(
            self._active
            or self._queue
            or any(not job.done for job in self._jobs)
        )

    def _abandon_plan(self, plan) -> None:
        """Release a failed query's plan without touching share peers."""
        if isinstance(plan, SharedScanConsumer):
            self.manager.discard(plan)
            return
        try:
            plan.close()
        except ReproError:
            pass

    def run(self) -> None:
        """Drive every submitted query to completion."""
        while self.poll():
            pass

    def run_until(self, handle: QueryHandle) -> None:
        """Drive the scheduler until ``handle`` finishes."""
        while not handle.done:
            if not self.poll() and not handle.done:
                raise EngineError(
                    f"scheduler idle with query #{handle.index} unfinished"
                )

    # --- completion -------------------------------------------------------

    def _finish_done(self, handle: QueryHandle) -> None:
        handle.state = QueryState.DONE
        handle.finished_at = time.monotonic()
        self.completed += 1
        obs_metrics.SCHEDULER_COMPLETED.inc()
        flight.record(
            "scheduler.done",
            handle.governance.label,
            latency_s=round(handle.latency or 0.0, 6),
            rows=handle.result.num_tuples if handle.result is not None else None,
        )
        self._observe_finish(handle)
        if self.tracer is not None:
            self._attach_trace(handle)

    def _finish_failed(self, handle: QueryHandle, exc: Exception) -> None:
        handle.state = QueryState.FAILED
        handle.error = exc
        handle.finished_at = time.monotonic()
        self.failed += 1
        obs_metrics.SCHEDULER_FAILED.inc()
        flight.record(
            "scheduler.failed",
            handle.governance.label,
            error=type(exc).__name__,
            latency_s=round(handle.latency or 0.0, 6),
        )
        if flight.enabled():
            # Exactly one black box per failed query: the event slice
            # above is already in the ring, so the dump captures this
            # failure's full lifecycle.
            flight.RECORDER.dump_blackbox(
                handle.governance.label,
                error=exc,
                governance=handle.governance.snapshot(),
                tracer=handle._tracer,
                replay=handle.replay,
            )
        self._observe_finish(handle)
        if self.tracer is not None:
            self._attach_trace(handle)

    def _observe_finish(self, handle: QueryHandle) -> None:
        """Window metrics + slow-query log shared by both outcomes."""
        obs_metrics.SCHEDULER_INFLIGHT.set(len(self._active))
        latency = handle.latency or 0.0
        obs_metrics.WINDOW_QUERY_LATENCY.observe(latency)
        obs_metrics.WINDOW_QPS.set(obs_metrics.WINDOW_QUERY_LATENCY.rate())
        explain = None
        if handle._tracer is not None and handle._tracer.roots:
            from repro.obs.explain import render_explain

            explain = render_explain(handle._tracer)
        self.slowlog.observe(
            SlowQueryEntry(
                label=handle.governance.label,
                table=handle.query.table,
                latency_s=latency,
                queue_s=handle.queue_seconds or 0.0,
                slices=handle.slices,
                rows=handle.result.num_tuples if handle.result is not None else None,
                error=type(handle.error).__name__ if handle.error else None,
                shared=handle.shared,
                events=handle.result.events.as_dict()
                if handle.result is not None
                else {},
                explain=explain,
            )
        )

    def _attach_trace(self, handle: QueryHandle) -> None:
        """Graft the query's span tree onto its own scheduler track."""
        # The per-query tracer lives on the plan's context; reach it via
        # the generator's closed-over context is gone by now, so it is
        # recorded on the handle when the plan was built.
        tracer = getattr(handle, "_tracer", None)
        if tracer is None or not tracer.roots:
            return
        assert self.tracer is not None
        self.tracer.attach_subtree(
            tracer.roots,
            tracer.slices,
            track=handle.index,
            epoch_ns=tracer.epoch_ns,
        )

    # --- reporting --------------------------------------------------------

    def handles(self) -> list[QueryHandle]:
        """Every handle ever submitted, in submission order."""
        return list(self._handles)

    def modeled_io_bytes(self) -> int:
        """Total modeled I/O of the workload so far, shares counted once.

        Shared streams account their page reads exactly once on the
        stream (see :class:`~repro.engine.sharing.SharedScanStream`);
        unshared queries each pay for their own pages.
        """
        total = self.manager.io_bytes()
        for handle in self._handles:
            if handle.shared or handle.result is None:
                continue
            total += handle.result.events.pages_touched * handle.table.page_size
        return total

    def board(self) -> dict:
        """Live scheduler board for the dashboard: queues, riders, streams."""
        return {
            "queued": [handle.governance.label for handle in self._queue],
            "running": [
                {
                    "label": handle.governance.label,
                    "table": handle.query.table,
                    "slices": handle.slices,
                    "shared": handle.shared,
                }
                for handle, _, _ in self._active
            ],
            "streams": self.manager.board(),
            "jobs": [
                {
                    "label": job.label,
                    "steps": job.steps,
                    "done": job.done,
                    "failed": job.failed,
                }
                for job in self._jobs
            ],
            "completed": self.completed,
            "failed": self.failed,
        }

    def stats(self) -> dict:
        """Workload-level summary (feeds ``run_workload``'s info dict)."""
        queue_waits = [
            handle.queue_seconds
            for handle in self._handles
            if handle.queue_seconds is not None
        ]
        return {
            "submitted": len(self._handles),
            "completed": self.completed,
            "failed": self.failed,
            "queued": len(self._queue),
            "running": len(self._active),
            "max_inflight": self.max_inflight,
            "share_scans": self.share_scans,
            "max_queue_wait_s": max(queue_waits, default=0.0),
            "modeled_io_bytes": self.modeled_io_bytes(),
            **self.manager.stats(),
        }
