"""Work-event counters accumulated during query execution.

Every counter is additive and linear in the number of tuples scanned,
which is what makes small-run execution scalable to the paper's 60 M-row
cardinality (:meth:`CostEvents.scaled`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.base import CodecKind


@dataclass
class CostEvents:
    """Counts of the engine's micro-level work items.

    The split mirrors the paper's measurement methodology: user-mode
    computation (everything the operators do), memory traffic by access
    pattern (the hardware prefetcher hides sequential lines but not
    random ones), and kernel-side I/O work (``sys`` time).
    """

    # --- user-mode computation ------------------------------------------
    tuples_examined: int = 0          #: row-scanner tuple iterations
    values_examined: int = 0          #: dense column-scan value iterations
    predicate_evals: int = 0          #: predicate evaluations
    predicate_eval_bytes: int = 0     #: bytes of the compared operands
    positions_processed: int = 0      #: position-list driven lookups
    values_copied: int = 0            #: attribute values copied to blocks
    bytes_copied: int = 0             #: bytes of those copies
    values_decoded: dict[CodecKind, int] = field(default_factory=dict)
    pages_touched: int = 0            #: page-boundary crossings
    blocks_produced: int = 0          #: block-iterator handoffs
    agg_updates: int = 0              #: aggregate accumulator updates
    group_lookups: int = 0            #: hash/sort group probes
    join_comparisons: int = 0         #: merge-join key comparisons
    sort_comparisons: int = 0         #: sort-based operator comparisons

    # --- memory hierarchy --------------------------------------------------
    mem_seq_lines: int = 0            #: L2 lines touched prefetchably
    mem_rand_lines: int = 0           #: L2 lines touched unpredictably
    l1_lines: int = 0                 #: 64-byte lines moved L2 -> L1

    # --- kernel-side I/O work ---------------------------------------------
    bytes_read: int = 0               #: bytes transferred from disk
    io_requests: int = 0              #: I/O units issued
    stream_switches: int = 0          #: AIO switches between file streams

    def count_decode(self, kind: CodecKind, count: int) -> None:
        """Record ``count`` value decodes under scheme ``kind``."""
        if count:
            self.values_decoded[kind] = self.values_decoded.get(kind, 0) + count

    def merge(self, other: "CostEvents") -> None:
        """Accumulate another event set into this one."""
        for name in _INT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for kind, count in other.values_decoded.items():
            self.count_decode(kind, count)

    def snapshot(self) -> "CostEvents":
        """An independent copy of the current counters.

        Span tracing marks the shared event object at window entry and
        diffs at exit; the copy must not alias ``values_decoded``.
        """
        clone = CostEvents()
        for name in _INT_FIELDS:
            setattr(clone, name, getattr(self, name))
        clone.values_decoded = dict(self.values_decoded)
        return clone

    def diff(self, baseline: "CostEvents") -> "CostEvents":
        """Counter-wise ``self - baseline`` (deltas may be negative).

        The inverse of :meth:`merge` over a window: diffing the counters
        at window exit against a :meth:`snapshot` taken at entry yields
        exactly the work recorded inside the window.
        """
        delta = CostEvents()
        for name in _INT_FIELDS:
            setattr(delta, name, getattr(self, name) - getattr(baseline, name))
        decoded = {}
        for kind in set(self.values_decoded) | set(baseline.values_decoded):
            count = self.values_decoded.get(kind, 0) - baseline.values_decoded.get(
                kind, 0
            )
            if count:
                decoded[kind] = count
        delta.values_decoded = decoded
        return delta

    def scaled(self, factor: float) -> "CostEvents":
        """A copy with every counter multiplied by ``factor``.

        Used to extrapolate a small-run execution to paper-scale
        cardinality; all counters are linear in the input size for the
        scan-mostly queries studied.
        """
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        scaled = CostEvents()
        for name in _INT_FIELDS:
            setattr(scaled, name, int(round(getattr(self, name) * factor)))
        scaled.values_decoded = {
            kind: int(round(count * factor))
            for kind, count in self.values_decoded.items()
        }
        return scaled

    def total_decodes(self) -> int:
        """Total decode operations across schemes."""
        return sum(self.values_decoded.values())

    def as_dict(self) -> dict:
        """Flat dict of counters (for reports and tests)."""
        out = {name: getattr(self, name) for name in _INT_FIELDS}
        for kind, count in self.values_decoded.items():
            out[f"decoded_{kind.value}"] = count
        return out


_INT_FIELDS = [
    name
    for name, f in CostEvents.__dataclass_fields__.items()
    if f.type == "int"
]
