"""Conclusion extension — operating directly on compressed data.

The conclusion lists "the ability to operate directly on compressed
data [1]" among the column-store advantages the study deliberately
excluded.  This experiment enables the dictionary-code predicate path
and measures the CPU saving on compressed ORDERS-Z scans.
"""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan
from repro.engine.plan import scan_plan
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import ScanQuery
from repro.cpusim.costmodel import CpuModel
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.workloads import prepare_orders

#: (label, predicate, project the predicate attribute too?).  When the
#: predicate column is not projected, qualifying values never need to be
#: decoded at all; when it is, only qualifying values pay the lookup —
#: a win at low selectivity, a wash (or worse) at high selectivity.
_CASES = (
    (
        "priority = 1-URGENT (not projected)",
        Predicate("O_ORDERPRIORITY", ComparisonOp.EQ, b"1-URGENT"),
        False,
    ),
    (
        "priority <= 2-HIGH (not projected)",
        Predicate("O_ORDERPRIORITY", ComparisonOp.LE, b"2-HIGH"),
        False,
    ),
    (
        "status != F (not projected)",
        Predicate("O_ORDERSTATUS", ComparisonOp.NE, b"F"),
        False,
    ),
    (
        "priority = 1-URGENT (projected)",
        Predicate("O_ORDERPRIORITY", ComparisonOp.EQ, b"1-URGENT"),
        True,
    ),
)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Measure direct-on-compressed predicate evaluation."""
    config = config or ExperimentConfig()
    prepared = prepare_orders(num_rows, compressed=True)
    model = CpuModel(config.calibration)
    scale = config.cardinality / num_rows

    table = FigureResult(
        title="User CPU (s) per ORDERS-Z scan, decoded vs on-codes",
        headers=["predicate", "decoded", "on codes", "saving"],
    )
    series: dict[str, list[float]] = {
        "decoded": [],
        "on_codes": [],
        "projected": [],
    }
    for label, predicate, project_attr in _CASES:
        if project_attr:
            select = (predicate.attr, "O_TOTALPRICE")
        else:
            select = ("O_TOTALPRICE",)
        query = ScanQuery(
            prepared.schema.name, select=select, predicates=(predicate,)
        )
        results = {}
        for on_codes in (False, True):
            context = ExecutionContext(
                calibration=config.calibration,
                compressed_execution=on_codes,
            )
            plan = scan_plan(context, prepared.column, query)
            result = execute_plan(plan)
            seconds = model.user_seconds(context.events.scaled(scale))
            results[on_codes] = (result, seconds)
        decoded_result, decoded_seconds = results[False]
        codes_result, codes_seconds = results[True]
        if decoded_result.num_tuples != codes_result.num_tuples:
            raise AssertionError("compressed execution changed the answer")
        saving = 1.0 - codes_seconds / decoded_seconds
        table.add_row(
            label,
            round(decoded_seconds, 3),
            round(codes_seconds, 3),
            f"{saving:.1%}",
        )
        series["decoded"].append(decoded_seconds)
        series["on_codes"].append(codes_seconds)
        series["projected"].append(1.0 if project_attr else 0.0)
    return ExperimentOutput(
        name="Extension: operating directly on compressed data",
        tables=[table],
        series=series,
    )
