"""TPC-H-substitute generator tests: schemas, domains, Figure 5 widths."""

import numpy as np
import pytest

from repro.compression.base import CodecKind
from repro.data import distributions as dist
from repro.data.generator import GeneratedTable
from repro.data.tpch import (
    apply_fig5_compression,
    generate_lineitem,
    generate_orders,
    generate_tpch_pair,
    lineitem_schema,
    orders_schema,
)
from repro.errors import SchemaError


class TestSchemas:
    def test_lineitem_attribute_order_matches_fig5(self):
        names = lineitem_schema().attribute_names
        assert names[0] == "L_PARTKEY"
        assert names[1] == "L_ORDERKEY"
        assert names[8] == "L_SHIPINSTRUCT"
        assert names[10] == "L_COMMENT"
        assert names[15] == "L_RECEIPTDATE"

    def test_orders_attribute_order_matches_fig5(self):
        names = orders_schema().attribute_names
        assert names == (
            "O_ORDERDATE",
            "O_ORDERKEY",
            "O_CUSTKEY",
            "O_ORDERSTATUS",
            "O_ORDERPRIORITY",
            "O_TOTALPRICE",
            "O_SHIPPRIORITY",
        )


class TestGeneration:
    def test_deterministic(self):
        a = generate_orders(500, seed=4)
        b = generate_orders(500, seed=4)
        for name in a.schema.attribute_names:
            np.testing.assert_array_equal(a.column(name), b.column(name))

    def test_different_seeds_differ(self):
        a = generate_orders(500, seed=4)
        b = generate_orders(500, seed=5)
        assert not np.array_equal(a.column("O_CUSTKEY"), b.column("O_CUSTKEY"))

    def test_orderkeys_sorted_with_small_steps(self, orders_data):
        keys = orders_data.column("O_ORDERKEY")
        steps = np.diff(keys)
        assert (steps >= 1).all()
        assert steps.max() <= 255  # fits FOR-delta's 8 bits

    def test_lineitem_orderkeys_sorted(self, lineitem_data):
        keys = lineitem_data.column("L_ORDERKEY")
        assert (np.diff(keys) >= 0).all()

    def test_line_numbers_restart_per_order(self, lineitem_data):
        keys = lineitem_data.column("L_ORDERKEY")
        nums = lineitem_data.column("L_LINENUMBER")
        assert nums[0] == 1
        for i in range(1, len(keys)):
            if keys[i] == keys[i - 1]:
                assert nums[i] == nums[i - 1] + 1
            else:
                assert nums[i] == 1

    def test_domains_match_fig5_widths(self, lineitem_data):
        li = lineitem_data
        assert li.column("L_QUANTITY").max() <= 63  # 6 bits
        assert li.column("L_LINENUMBER").max() <= 7  # 3 bits
        assert len(np.unique(li.column("L_RETURNFLAG"))) <= 4  # 2 bits
        assert len(np.unique(li.column("L_SHIPMODE"))) <= 8  # 3 bits
        assert len(np.unique(li.column("L_DISCOUNT"))) <= 16  # 4 bits
        assert li.column("L_SHIPDATE").max() < 2**16  # 2 bytes

    def test_dates_consistent(self, lineitem_data):
        li = lineitem_data
        assert (li.column("L_SHIPDATE") < li.column("L_RECEIPTDATE")).all()

    def test_orders_date_domain_fits_14_bits(self, orders_data):
        dates = orders_data.column("O_ORDERDATE")
        assert dates.min() >= dist.DAYS_1970_TO_1992
        assert dates.max() < 2**14

    def test_bad_row_counts_rejected(self):
        with pytest.raises(SchemaError):
            generate_orders(0)
        with pytest.raises(SchemaError):
            generate_lineitem(-5)
        with pytest.raises(SchemaError):
            generate_lineitem(None)  # needs order_keys


class TestFig5Compression:
    def test_lineitem_z_packs_to_51_bytes(self, lineitem_z_data):
        # The paper reports 52; the bit-exact sum of Figure 5's widths
        # is 408 bits = 51 bytes.
        assert lineitem_z_data.schema.packed_tuple_bits == 408

    def test_orders_z_packs_to_12_bytes(self, orders_z_data):
        assert orders_z_data.schema.packed_tuple_bits == 92  # ceil -> 12 B

    def test_schemes_match_fig5(self, orders_z_data):
        schema = orders_z_data.schema
        assert schema.attribute("O_ORDERDATE").spec.kind is CodecKind.PACK
        assert schema.attribute("O_ORDERDATE").spec.bits == 14
        assert schema.attribute("O_ORDERKEY").spec.kind is CodecKind.FOR_DELTA
        assert schema.attribute("O_CUSTKEY").spec.kind is CodecKind.NONE
        assert schema.attribute("O_SHIPPRIORITY").spec.bits == 1

    def test_unknown_table_rejected(self):
        from repro.types.schema import TableSchema

        data = generate_orders(50, seed=1)
        renamed = GeneratedTable(
            schema=TableSchema(name="CUSTOMER", attributes=data.schema.attributes),
            columns=dict(data.columns),
        )
        with pytest.raises(SchemaError):
            apply_fig5_compression(renamed)


class TestPairGeneration:
    def test_join_consistency(self):
        orders, lineitem = generate_tpch_pair(400, seed=2)
        order_keys = set(orders.column("O_ORDERKEY").tolist())
        line_keys = set(np.unique(lineitem.column("L_ORDERKEY")).tolist())
        assert line_keys <= order_keys

    def test_every_order_has_lines(self):
        orders, lineitem = generate_tpch_pair(400, seed=2)
        line_keys = set(np.unique(lineitem.column("L_ORDERKEY")).tolist())
        assert line_keys == set(orders.column("O_ORDERKEY").tolist())

    def test_average_lines_per_order_near_four(self):
        orders, lineitem = generate_tpch_pair(2_000, seed=3)
        ratio = lineitem.num_rows / orders.num_rows
        assert 3.0 < ratio < 5.0

    def test_dates_derived_from_orderkey_agree(self):
        orders, lineitem = generate_tpch_pair(300, seed=9)
        odate = dict(
            zip(orders.column("O_ORDERKEY"), orders.column("O_ORDERDATE"))
        )
        shift = dist.DAYS_1900_TO_1992 - dist.DAYS_1970_TO_1992
        ship = lineitem.column("L_SHIPDATE")
        keys = lineitem.column("L_ORDERKEY")
        for i in range(0, lineitem.num_rows, 97):
            base = odate[int(keys[i])] + shift
            assert base < ship[i] <= base + 121


class TestGeneratedTable:
    def test_ragged_columns_rejected(self):
        schema = orders_schema()
        data = generate_orders(10, seed=1)
        columns = dict(data.columns)
        columns["O_CUSTKEY"] = columns["O_CUSTKEY"][:5]
        with pytest.raises(SchemaError):
            GeneratedTable(schema=schema, columns=columns)

    def test_missing_column_rejected(self):
        data = generate_orders(10, seed=1)
        columns = dict(data.columns)
        del columns["O_CUSTKEY"]
        with pytest.raises(SchemaError):
            GeneratedTable(schema=data.schema, columns=columns)

    def test_row_accessor(self, orders_data):
        row = orders_data.row(0)
        assert len(row) == 7
        assert row[1] == orders_data.column("O_ORDERKEY")[0]

    def test_head(self, orders_data):
        assert len(orders_data.head(3)) == 3
