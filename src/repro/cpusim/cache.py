"""Cache-line accounting for the hardware-prefetcher-aware memory model.

Section 2.1.2: on a Pentium 4-class CPU, sequentially accessed memory is
prefetched into L2 and costs memory-*bandwidth* time (overlappable with
computation), while unpredictable accesses stall for the full measured
memory latency (380 cycles).  The scanners therefore classify the lines
they touch on each page: when a scan node visits most of a page's lines
the hardware prefetcher keeps up (sequential); when it hops across a
sparse position list, each touched line is a random miss.
"""

from __future__ import annotations

import numpy as np

#: A node whose positions cover at least this fraction of a page's lines
#: is treated as a sequential (prefetched) access pattern.
PREFETCH_COVERAGE_THRESHOLD = 0.5


def lines_touched(
    positions: np.ndarray,
    value_bits: int,
    line_bytes: int,
) -> int:
    """Distinct cache lines containing the values at ``positions``.

    ``positions`` are value indexes within one page; values are fixed
    width (``value_bits``), densely packed from the start of the page.
    """
    if positions.size == 0:
        return 0
    bit_offsets = np.asarray(positions, dtype=np.int64) * value_bits
    line_ids = bit_offsets // (line_bytes * 8)
    # Wide values can straddle lines; count the end line too.
    end_line_ids = (bit_offsets + value_bits - 1) // (line_bytes * 8)
    return int(np.union1d(line_ids, end_line_ids).size)


def page_lines(count: int, value_bits: int, line_bytes: int) -> int:
    """Lines occupied by ``count`` packed values."""
    if count <= 0:
        return 0
    total_bits = count * value_bits
    return (total_bits + line_bytes * 8 - 1) // (line_bytes * 8)


def line_coverage(
    positions: np.ndarray,
    count: int,
    value_bits: int,
    line_bytes: int,
) -> tuple[int, float]:
    """``(touched, fraction-of-page-lines)`` for a positional access."""
    touched = lines_touched(positions, value_bits, line_bytes)
    total = page_lines(count, value_bits, line_bytes)
    if total == 0:
        return 0, 0.0
    return touched, touched / total


def classify_page_access(
    positions: np.ndarray,
    count: int,
    value_bits: int,
    line_bytes: int,
    threshold: float = PREFETCH_COVERAGE_THRESHOLD,
) -> tuple[int, int]:
    """Split one page access into ``(seq_lines, rand_lines)``.

    Dense coverage → the whole page's lines arrive via the prefetcher;
    sparse coverage → each touched line is an unpredicted miss.
    """
    touched, coverage = line_coverage(positions, count, value_bits, line_bytes)
    if coverage >= threshold:
        return page_lines(count, value_bits, line_bytes), 0
    return 0, touched
