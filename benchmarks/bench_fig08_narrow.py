"""Figure 8 — narrow tuples (ORDERS, 32 bytes)."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import fig08_narrow


def bench_figure8_narrow(benchmark):
    out = run_once(benchmark, lambda: fig08_narrow.run(num_rows=BENCH_ROWS))
    publish(out, "figure_08_narrow.txt")

    # 1.9 GB over 180 MB/s: ~10.8 s, flat for the row store.
    row = out.series["row_elapsed"]
    assert abs(row[0] - 10.8) / 10.8 < 0.05
    assert max(row) - min(row) < 0.02 * max(row)
    # Memory delays are no longer visible on narrow tuples.
    assert max(out.series["col_l2"]) < 0.05
    # Column CPU overtakes row CPU (the memory-resident caveat of §4.3).
    assert out.series["col_cpu"][-1] > out.series["row_cpu"][-1]
