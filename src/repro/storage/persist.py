"""Persisting tables to real files on disk.

The simulator never needs real files — sizes and access patterns are
enough — but a usable library should survive a process restart.  This
module serializes a loaded table (any layout) into a directory:

* ``meta.json`` — schema, per-column codec specs (including the
  dictionary values), layout, row count, page size, page directories;
* one binary page file per storage file, byte-for-byte the same pages
  the in-memory :class:`~repro.storage.pagefile.PagedFile` holds.

``save_table`` / ``open_table`` round-trip every layout and codec.
"""

from __future__ import annotations

import base64
import json
import pathlib

import numpy as np

from repro.compression.base import CodecKind, CodecSpec
from repro.errors import StorageError
from repro.storage.layout import Layout
from repro.storage.pagefile import PagedFile
from repro.storage.table import (
    ColumnFile,
    ColumnTable,
    PaxTable,
    RowTable,
    Table,
    build_column_file,
)
from repro.types.datatypes import AttributeType, FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema

_META_NAME = "meta.json"
_FORMAT_VERSION = 1


# --- schema (de)serialization ------------------------------------------------


def _type_to_json(attr_type: AttributeType) -> dict:
    if isinstance(attr_type, IntType):
        return {"kind": "int"}
    if isinstance(attr_type, FixedTextType):
        return {"kind": "text", "width": attr_type.width}
    raise StorageError(f"unknown attribute type: {attr_type!r}")


def _type_from_json(payload: dict) -> AttributeType:
    if payload["kind"] == "int":
        return IntType()
    if payload["kind"] == "text":
        return FixedTextType(payload["width"])
    raise StorageError(f"unknown attribute type in metadata: {payload}")


def _dictionary_to_json(dictionary: tuple) -> list:
    out = []
    for value in dictionary:
        if isinstance(value, (bytes, np.bytes_)):
            out.append({"b64": base64.b64encode(bytes(value)).decode("ascii")})
        else:
            out.append({"int": int(value)})
    return out


def _dictionary_from_json(payload: list) -> tuple:
    out = []
    for entry in payload:
        if "b64" in entry:
            out.append(base64.b64decode(entry["b64"]))
        else:
            out.append(int(entry["int"]))
    return tuple(out)


def _spec_to_json(spec: CodecSpec) -> dict:
    return {
        "kind": spec.kind.value,
        "bits": spec.bits,
        "zigzag": spec.zigzag,
        "run_bits": spec.run_bits,
        "dictionary": _dictionary_to_json(spec.dictionary),
    }


def _spec_from_json(payload: dict) -> CodecSpec:
    return CodecSpec(
        kind=CodecKind(payload["kind"]),
        bits=payload["bits"],
        zigzag=payload["zigzag"],
        run_bits=payload["run_bits"],
        dictionary=_dictionary_from_json(payload["dictionary"]),
    )


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "attributes": [
            {
                "name": attr.name,
                "type": _type_to_json(attr.attr_type),
                "codec": (
                    _spec_to_json(attr.codec_spec)
                    if attr.codec_spec is not None
                    else None
                ),
            }
            for attr in schema
        ],
    }


def _schema_from_json(payload: dict) -> TableSchema:
    attributes = tuple(
        Attribute(
            name=entry["name"],
            attr_type=_type_from_json(entry["type"]),
            codec_spec=(
                _spec_from_json(entry["codec"]) if entry["codec"] else None
            ),
        )
        for entry in payload["attributes"]
    )
    return TableSchema(name=payload["name"], attributes=attributes)


# --- file (de)serialization -----------------------------------------------------


def _write_paged_file(file: PagedFile, path: pathlib.Path) -> None:
    with open(path, "wb") as handle:
        for page in file.iter_pages():
            handle.write(page)


def _read_paged_file(path: pathlib.Path, name: str, page_size: int) -> PagedFile:
    file = PagedFile(name, page_size=page_size)
    data = path.read_bytes()
    if len(data) % page_size != 0:
        raise StorageError(
            f"{path} has {len(data)} bytes, not a multiple of page size "
            f"{page_size}"
        )
    for start in range(0, len(data), page_size):
        file.append_page(data[start : start + page_size])
    return file


# --- public API -----------------------------------------------------------------


def save_table(table: Table, directory: str | pathlib.Path) -> pathlib.Path:
    """Persist a loaded table into ``directory`` (created if missing)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta: dict = {
        "format_version": _FORMAT_VERSION,
        "layout": table.layout.value,
        "num_rows": table.num_rows,
        "page_size": table.page_size,
        "schema": _schema_to_json(table.schema),
    }
    if isinstance(table, (RowTable, PaxTable)):
        _write_paged_file(table.file, directory / "table.pages")
    elif isinstance(table, ColumnTable):
        columns_meta = {}
        for name, column_file in table.column_files.items():
            _write_paged_file(column_file.file, directory / f"{name}.pages")
            columns_meta[name] = {
                "first_rows": (
                    column_file.first_rows.tolist()
                    if column_file.first_rows is not None
                    else None
                ),
                "effective_bits": column_file.effective_bits,
            }
        meta["columns"] = columns_meta
    else:
        raise StorageError(f"unsupported table type: {type(table).__name__}")
    (directory / _META_NAME).write_text(
        json.dumps(meta, indent=2), encoding="utf-8"
    )
    return directory


def open_table(directory: str | pathlib.Path) -> Table:
    """Load a table previously written by :func:`save_table`."""
    directory = pathlib.Path(directory)
    meta_path = directory / _META_NAME
    if not meta_path.exists():
        raise StorageError(f"no {_META_NAME} in {directory}")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported on-disk format version: {meta.get('format_version')}"
        )
    schema = _schema_from_json(meta["schema"])
    layout = Layout(meta["layout"])
    page_size = meta["page_size"]
    num_rows = meta["num_rows"]

    if layout is Layout.ROW:
        file = _read_paged_file(directory / "table.pages", schema.name, page_size)
        return RowTable(schema, file, num_rows, page_size=page_size)
    if layout is Layout.PAX:
        file = _read_paged_file(directory / "table.pages", schema.name, page_size)
        return PaxTable(schema, file, num_rows, page_size=page_size)

    column_files: dict[str, ColumnFile] = {}
    for attr in schema:
        column_file = build_column_file(schema, attr.name, page_size)
        column_file.file = _read_paged_file(
            directory / f"{attr.name}.pages",
            f"{schema.name}.{attr.name}",
            page_size,
        )
        column_meta = meta["columns"][attr.name]
        if column_meta["first_rows"] is not None:
            column_file.first_rows = np.asarray(
                column_meta["first_rows"], dtype=np.int64
            )
        column_file.effective_bits = column_meta["effective_bits"]
        column_files[attr.name] = column_file
    return ColumnTable(schema, column_files, num_rows, page_size=page_size)
