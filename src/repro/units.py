"""Unit constants and small conversion helpers.

The paper quotes sizes in binary units (4 KB pages, 128 KB I/O units,
1 MB L2) and bandwidths in decimal megabytes per second (60 MB/sec per
disk).  Keeping both spellings here avoids scattering magic numbers.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

BITS_PER_BYTE = 8

MSEC = 1e-3
USEC = 1e-6
NSEC = 1e-9


def bits_to_bytes(num_bits: int) -> int:
    """Number of whole bytes needed to hold ``num_bits`` bits."""
    if num_bits < 0:
        raise ValueError(f"negative bit count: {num_bits}")
    return (num_bits + BITS_PER_BYTE - 1) // BITS_PER_BYTE


def fmt_bytes(num_bytes: float) -> str:
    """Human-readable byte count, e.g. ``9.5 GB``."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1000.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration, e.g. ``12.3 s`` or ``4.5 ms``."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MSEC:
        return f"{seconds / MSEC:.2f} ms"
    return f"{seconds / USEC:.1f} us"
