"""Dictionary-codec tests."""

import numpy as np
import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.dictionary import DictionaryCodec
from repro.errors import CompressionError
from repro.types.datatypes import FixedTextType, IntType


def make_text_codec(values, width=10):
    spec = DictionaryCodec.spec_for_values(values)
    return DictionaryCodec(spec, FixedTextType(width))


class TestDictionaryCodec:
    def test_paper_example_male_female_is_one_bit(self):
        values = np.array([b"MALE", b"FEMALE"] * 10, dtype="S6")
        spec = DictionaryCodec.spec_for_values(values)
        assert spec.bits == 1
        assert len(spec.dictionary) == 2

    def test_returnflag_is_two_bits(self):
        values = np.array([b"R", b"A", b"N"] * 5, dtype="S1")
        assert DictionaryCodec.spec_for_values(values).bits == 2

    def test_text_roundtrip(self):
        values = np.array(
            [b"AIR", b"RAIL", b"SHIP", b"AIR", b"TRUCK"] * 7, dtype="S10"
        )
        codec = make_text_codec(values)
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(
            codec.decode_page(payload, len(values), state), values
        )

    def test_int_roundtrip(self):
        values = np.array([0, 5, 10, 5, 0] * 9)
        spec = DictionaryCodec.spec_for_values(values)
        codec = DictionaryCodec(spec, IntType())
        payload, state = codec.encode_page(values)
        np.testing.assert_array_equal(
            codec.decode_page(payload, len(values), state), values
        )

    def test_unknown_value_rejected_at_encode(self):
        codec = make_text_codec(np.array([b"A", b"B"], dtype="S10"))
        with pytest.raises(CompressionError):
            codec.encode_page(np.array([b"C"], dtype="S10"))

    def test_codes_are_dictionary_indexes(self):
        values = np.array([b"B", b"A", b"B"], dtype="S10")
        codec = make_text_codec(values)
        codes = codec.encode_codes(values)
        np.testing.assert_array_equal(codec.dictionary[codes], values)

    def test_duplicate_dictionary_rejected(self):
        spec = CodecSpec(kind=CodecKind.DICT, bits=1, dictionary=(b"A", b"A"))
        with pytest.raises(CompressionError):
            DictionaryCodec(spec, FixedTextType(4))

    def test_undersized_bits_rejected(self):
        spec = CodecSpec(
            kind=CodecKind.DICT, bits=1, dictionary=(b"A", b"B", b"C")
        )
        with pytest.raises(CompressionError):
            DictionaryCodec(spec, FixedTextType(4))

    def test_empty_dictionary_rejected(self):
        with pytest.raises(CompressionError):
            CodecSpec(kind=CodecKind.DICT, bits=1, dictionary=())

    def test_selective_decode(self):
        values = np.array([b"X", b"Y", b"Z"] * 20, dtype="S4")
        codec = make_text_codec(values, width=4)
        payload, state = codec.encode_page(values)
        selected, decoded = codec.decode_positions(
            payload, 60, state, np.array([0, 30, 59])
        )
        np.testing.assert_array_equal(selected, values[[0, 30, 59]])
        assert decoded == 3
