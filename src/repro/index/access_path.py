"""Access-path cost model: sequential scan vs sorted-RID index fetch.

The index fetch reads only the pages containing qualifying tuples, in
RID order; between two touched pages that are not adjacent on disk the
heads reposition.  Skipping therefore pays off only when the *gaps*
between qualifying tuples are worth more than a seek — which, at
warehouse selectivities, they almost never are (Section 2.1.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.errors import SimulationError


@dataclass(frozen=True)
class AccessPathCosts:
    """Cost of both access paths for one predicate."""

    sequential_seconds: float
    index_seconds: float
    pages_fetched: int
    seeks: int

    @property
    def index_wins(self) -> bool:
        return self.index_seconds < self.sequential_seconds

    @property
    def winner(self) -> str:
        return "index" if self.index_wins else "sequential-scan"


def sequential_scan_seconds(
    table_bytes: int, calibration: Calibration = DEFAULT_CALIBRATION
) -> float:
    """Full sequential scan at the array's aggregate bandwidth."""
    if table_bytes < 0:
        raise SimulationError(f"negative table size: {table_bytes}")
    return table_bytes / calibration.total_disk_bandwidth


def index_scan_seconds_for_rids(
    rids: np.ndarray,
    tuples_per_page: int,
    page_size: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> tuple[float, int, int]:
    """Exact fetch cost for a concrete sorted RID list.

    Returns ``(seconds, pages_fetched, seeks)``.  Adjacent touched pages
    are read in one sequential sweep; each gap costs a head seek.
    """
    if tuples_per_page <= 0:
        raise SimulationError(f"tuples_per_page must be positive: {tuples_per_page}")
    rids = np.asarray(rids, dtype=np.int64)
    if rids.size == 0:
        return 0.0, 0, 0
    if np.any(np.diff(rids) < 0):
        raise SimulationError("RID list must be sorted (the paper sorts it)")
    pages = np.unique(rids // tuples_per_page)
    gaps = int(np.count_nonzero(np.diff(pages) > 1)) + 1  # +1 initial position
    transfer = pages.size * page_size / calibration.total_disk_bandwidth
    seconds = transfer + gaps * calibration.seek_seconds
    return seconds, int(pages.size), gaps


def index_scan_seconds(
    num_matches: int,
    num_rows: int,
    tuples_per_page: int,
    page_size: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> tuple[float, int, int]:
    """Expected fetch cost for uniformly spread matches.

    Uses the standard occupancy estimates: with ``P`` pages and ``n``
    uniformly placed matches, ``P (1 - (1 - 1/P)^n)`` distinct pages are
    touched, and a touched page follows another touched page (no seek)
    with probability ``touched / P``.
    """
    if num_matches < 0 or num_rows <= 0:
        raise SimulationError(
            f"bad match/row counts: {num_matches}/{num_rows}"
        )
    if num_matches == 0:
        return 0.0, 0, 0
    total_pages = math.ceil(num_rows / tuples_per_page)
    touched = total_pages * (1.0 - (1.0 - 1.0 / total_pages) ** num_matches)
    adjacency = touched / total_pages
    seeks = max(1.0, touched * (1.0 - adjacency))
    transfer = touched * page_size / calibration.total_disk_bandwidth
    seconds = transfer + seeks * calibration.seek_seconds
    return seconds, int(round(touched)), int(round(seeks))


def compare_access_paths(
    num_matches: int,
    num_rows: int,
    tuples_per_page: int,
    page_size: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> AccessPathCosts:
    """Both access paths for a uniformly-spread predicate."""
    total_pages = math.ceil(num_rows / tuples_per_page)
    sequential = sequential_scan_seconds(total_pages * page_size, calibration)
    index_time, pages, seeks = index_scan_seconds(
        num_matches, num_rows, tuples_per_page, page_size, calibration
    )
    return AccessPathCosts(
        sequential_seconds=sequential,
        index_seconds=index_time,
        pages_fetched=pages,
        seeks=seeks,
    )


def breakeven_selectivity(
    tuple_width: float,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """The paper's closed form: skipping pays below this selectivity.

    Skipping ahead to the next qualifying tuple beats reading through
    when the expected gap between qualifying tuples,
    ``tuple_width / selectivity`` bytes, takes longer to stream than a
    seek: ``selectivity < tuple_width / (seek_time * bandwidth)``.

    With the paper's reference numbers — 5 ms seek, 300 MB/s, 128-byte
    tuples — this evaluates to 0.0085 %, the "0.008 % selectivity"
    quoted in Section 2.1.1.
    """
    if tuple_width <= 0:
        raise SimulationError(f"tuple width must be positive: {tuple_width}")
    return tuple_width / (
        calibration.seek_seconds * calibration.total_disk_bandwidth
    )
