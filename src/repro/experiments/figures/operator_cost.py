"""Section 5's operator-cost claim, measured.

"Note that a high-cost relational operator lowers the CPU rate, and the
difference between columns and rows in a CPU-bound system becomes less
noticeable."  This experiment stacks increasingly expensive aggregation
above the same CPU-bound scan (compressed ORDERS-Z on a single disk)
and watches the column-over-row speedup converge toward 1.
"""

from __future__ import annotations

from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_aggregate, measure_scan
from repro.experiments.workloads import prepare_orders

SELECTIVITY = 0.50
SELECTED = ("O_ORDERDATE", "O_CUSTKEY", "O_TOTALPRICE")

#: Operator stacks of increasing CPU cost above the same scan.
_STACKS = (
    ("scan only", None, False),
    (
        "+ hash agg, 3 groups",
        AggregateSpec(
            group_by=("O_ORDERDATE",),  # replaced below with a coarse key
            function=AggregateFunction.SUM,
            argument="O_TOTALPRICE",
        ),
        False,
    ),
    (
        "+ hash agg, many groups",
        AggregateSpec(
            group_by=("O_CUSTKEY",),
            function=AggregateFunction.SUM,
            argument="O_TOTALPRICE",
        ),
        False,
    ),
    (
        "+ sort-based agg",
        AggregateSpec(
            group_by=("O_CUSTKEY",),
            function=AggregateFunction.SUM,
            argument="O_TOTALPRICE",
        ),
        True,
    ),
)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Stack operators above a CPU-bound scan, watch the gap close."""
    base = config or ExperimentConfig()
    # Six disks make both layouts CPU-bound, where the claim applies.
    calibration = base.calibration.with_overrides(num_disks=6)
    config_one_disk = base.with_(calibration=calibration)
    prepared = prepare_orders(num_rows, compressed=True)
    predicate = prepared.predicate("O_ORDERDATE", SELECTIVITY)
    query = ScanQuery(
        prepared.schema.name, select=SELECTED, predicates=(predicate,)
    )

    table = FigureResult(
        title="Speedup vs operator cost above the scan (ORDERS-Z, 6 disks)",
        headers=["plan", "row CPU (s)", "col CPU (s)", "speedup"],
    )
    series: dict[str, list[float]] = {"speedup": [], "row_cpu": [], "col_cpu": []}
    for label, spec, sort_based in _STACKS:
        if spec is None:
            row = measure_scan(prepared.row, query, config_one_disk)
            col = measure_scan(prepared.column, query, config_one_disk)
        else:
            row = measure_aggregate(
                prepared.row, query, spec, config_one_disk, sort_based=sort_based
            )
            col = measure_aggregate(
                prepared.column, query, spec, config_one_disk, sort_based=sort_based
            )
        speedup = row.elapsed / col.elapsed
        table.add_row(
            label,
            round(row.cpu.total, 2),
            round(col.cpu.total, 2),
            round(speedup, 3),
        )
        series["speedup"].append(speedup)
        series["row_cpu"].append(row.cpu.total)
        series["col_cpu"].append(col.cpu.total)

    return ExperimentOutput(
        name="Section 5: operator cost closes the gap",
        tables=[table],
        series=series,
    )
