"""Table 1 — the expected performance-trend directions."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import table1_trends


def bench_table1_trends(benchmark):
    out = run_once(benchmark, lambda: table1_trends.run(num_rows=BENCH_ROWS))
    publish(out, "table_1_trends.txt")
    assert all(v == 1.0 for v in out.series["holds"])
