"""CPU cost-model tests: events, cache classification, breakdowns."""

import numpy as np
import pytest

from repro.compression.base import CodecKind
from repro.cpusim.breakdown import CpuBreakdown
from repro.cpusim.cache import (
    classify_page_access,
    line_coverage,
    lines_touched,
    page_lines,
)
from repro.cpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.cpusim.costmodel import CpuModel
from repro.cpusim.events import CostEvents


class TestCostEvents:
    def test_merge(self):
        a = CostEvents(tuples_examined=5, bytes_copied=10)
        a.count_decode(CodecKind.PACK, 3)
        b = CostEvents(tuples_examined=2)
        b.count_decode(CodecKind.PACK, 1)
        b.count_decode(CodecKind.DICT, 4)
        a.merge(b)
        assert a.tuples_examined == 7
        assert a.values_decoded == {CodecKind.PACK: 4, CodecKind.DICT: 4}

    def test_scaled_is_linear(self):
        events = CostEvents(tuples_examined=100, mem_seq_lines=40)
        events.count_decode(CodecKind.FOR, 10)
        scaled = events.scaled(1000.0)
        assert scaled.tuples_examined == 100_000
        assert scaled.mem_seq_lines == 40_000
        assert scaled.values_decoded[CodecKind.FOR] == 10_000
        # The original is untouched.
        assert events.tuples_examined == 100

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            CostEvents().scaled(-1)

    def test_as_dict_includes_decodes(self):
        events = CostEvents()
        events.count_decode(CodecKind.DICT, 7)
        assert events.as_dict()["decoded_dict"] == 7

    def test_total_decodes(self):
        events = CostEvents()
        events.count_decode(CodecKind.DICT, 7)
        events.count_decode(CodecKind.PACK, 3)
        assert events.total_decodes() == 10


class TestCacheModel:
    def test_dense_positions_cover_all_lines(self):
        positions = np.arange(128)
        touched, coverage = line_coverage(positions, 128, 32, 128)
        assert touched == page_lines(128, 32, 128)
        assert coverage == 1.0

    def test_sparse_positions_touch_few_lines(self):
        positions = np.array([0, 1000])
        assert lines_touched(positions, 32, 128) == 2

    def test_values_sharing_a_line_counted_once(self):
        positions = np.array([0, 1, 2, 3])  # 4-byte values in one 128 B line
        assert lines_touched(positions, 32, 128) == 1

    def test_wide_value_straddles_lines(self):
        # one 69-byte value starting at byte 100 crosses a line boundary
        positions = np.array([1])
        assert lines_touched(positions, 69 * 8, 128) == 2

    def test_classification_threshold(self):
        dense = np.arange(100)
        seq, rand = classify_page_access(dense, 100, 32, 128)
        assert seq > 0 and rand == 0
        sparse = np.array([0, 900])
        seq, rand = classify_page_access(sparse, 1000, 32, 128)
        assert seq == 0 and rand == 2
        # Exactly at the 50% threshold counts as prefetchable.
        boundary = np.array([0, 90])
        seq, rand = classify_page_access(boundary, 100, 32, 128)
        assert seq == 4 and rand == 0

    def test_empty_positions(self):
        assert lines_touched(np.array([], dtype=np.int64), 32, 128) == 0
        assert page_lines(0, 32, 128) == 0


class TestCalibration:
    def test_paper_cpdb_rating(self):
        # One 3.2 GHz CPU over three 60 MB/s disks: ~18 cpdb.
        assert DEFAULT_CALIBRATION.cpdb == pytest.approx(17.8, abs=0.2)

    def test_single_disk_cpdb_triples(self):
        single = DEFAULT_CALIBRATION.with_overrides(num_disks=1)
        assert single.cpdb == pytest.approx(3 * DEFAULT_CALIBRATION.cpdb)

    def test_overrides_do_not_mutate_default(self):
        DEFAULT_CALIBRATION.with_overrides(clock_hz=1e9)
        assert DEFAULT_CALIBRATION.clock_hz == 3.2e9

    def test_memory_bus_is_one_byte_per_cycle(self):
        c = DEFAULT_CALIBRATION
        assert c.l2_line_bytes / c.seq_line_cycles == pytest.approx(1.0)


class TestCpuModel:
    def test_uop_is_instructions_over_three(self):
        model = CpuModel()
        events = CostEvents(predicate_evals=1_000_000)
        breakdown = model.breakdown(events)
        inst = model.user_instructions(events)
        assert breakdown.usr_uop == pytest.approx(
            inst / 3.0 / DEFAULT_CALIBRATION.clock_hz
        )

    def test_sequential_memory_overlaps_with_compute(self):
        model = CpuModel()
        # Lots of compute, little memory: no visible L2 stall.
        busy = CostEvents(predicate_evals=10_000_000, mem_seq_lines=1_000)
        assert model.breakdown(busy).usr_l2 == 0.0
        # Lots of memory, no compute: the full bandwidth time shows.
        idle = CostEvents(mem_seq_lines=1_000_000)
        expected = 1_000_000 * 128 / DEFAULT_CALIBRATION.clock_hz
        assert model.breakdown(idle).usr_l2 == pytest.approx(expected)

    def test_random_misses_never_overlap(self):
        model = CpuModel()
        events = CostEvents(predicate_evals=10_000_000, mem_rand_lines=1_000_000)
        breakdown = model.breakdown(events)
        assert breakdown.usr_l2 == pytest.approx(
            1_000_000 * 380 / DEFAULT_CALIBRATION.clock_hz
        )

    def test_sys_time_components(self):
        model = CpuModel()
        events = CostEvents(bytes_read=3_200_000_000)
        assert model.sys_seconds(events) == pytest.approx(1.0)  # 1 cycle/B
        events2 = CostEvents(io_requests=80_000)
        assert model.sys_seconds(events2) == pytest.approx(
            80_000 * DEFAULT_CALIBRATION.sys_cycles_per_request / 3.2e9
        )

    def test_decode_costs_by_kind(self):
        model = CpuModel()
        cheap = CostEvents()
        cheap.count_decode(CodecKind.FOR, 1000)
        pricey = CostEvents()
        pricey.count_decode(CodecKind.FOR_DELTA, 1000)
        assert model.user_instructions(pricey) > model.user_instructions(cheap)

    def test_breakdown_total_is_sum(self):
        breakdown = CpuBreakdown(sys=1.0, usr_uop=2.0, usr_l2=0.5, usr_l1=0.25, usr_rest=1.25)
        assert breakdown.user == pytest.approx(4.0)
        assert breakdown.total == pytest.approx(5.0)

    def test_breakdown_arithmetic(self):
        a = CpuBreakdown(sys=1, usr_uop=1, usr_l2=1, usr_l1=1, usr_rest=1)
        doubled = a + a
        assert doubled.total == pytest.approx(2 * a.total)
        scaled = a.scaled(3.0)
        assert scaled.total == pytest.approx(3 * a.total)

    def test_custom_calibration_changes_results(self):
        slow = CpuModel(Calibration(clock_hz=1.6e9))
        fast = CpuModel(Calibration(clock_hz=3.2e9))
        events = CostEvents(predicate_evals=1_000_000)
        assert slow.user_seconds(events) == pytest.approx(
            2 * fast.user_seconds(events)
        )
