"""Failure injection: corrupt pages and malformed inputs must raise
library errors, never silently return wrong data.

The core property (exercised in :class:`TestRandomBitFlips`): a random
single-bit flip anywhere in a stored table directory either raises
:class:`ChecksumError` (strict mode) or lands in the
:class:`CorruptionReport` with only intact rows returned (salvage mode)
— silence is never an option.
"""

import shutil
import struct

import numpy as np
import pytest

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.registry import build_codec
from repro.data.tpch import generate_orders
from repro.engine.executor import run_scan
from repro.engine.query import ScanQuery
from repro.errors import (
    ChecksumError,
    CompressionError,
    PageFormatError,
    ReproError,
    StorageError,
    TransientIOError,
)
from repro.storage.faults import flip_bit_on_disk
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_TRAILER_BYTES,
    ColumnPageCodec,
    RowPageCodec,
    page_checksum,
)
from repro.storage.pagefile import PagedFile
from repro.storage.persist import open_table, save_table
from repro.storage.scrub import CorruptionReport
from repro.types.datatypes import IntType


def restamp_checksum(page: bytes) -> bytes:
    """Recompute a page's CRC after tampering (to test non-CRC checks)."""
    crc_offset = len(page) - PAGE_TRAILER_BYTES + 4
    return (
        page[:crc_offset]
        + struct.pack("<I", page_checksum(page))
        + page[crc_offset + 4 :]
    )


def corrupt_count(page: bytes, new_count: int) -> bytes:
    """Overwrite the page's entry count (leaving the CRC stale)."""
    return struct.pack("<I", new_count) + page[4:]


class TestCorruptPages:
    def test_row_page_with_corrupt_count_fails_checksum(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:10] for k, v in orders_data.columns.items()}
        page = codec.encode(0, slices)
        bad = corrupt_count(page, 100_000)
        with pytest.raises(ChecksumError):
            codec.decode(bad)

    def test_row_page_with_impossible_count_behind_valid_checksum(self, orders_data):
        # Even when an attacker (or a bug) recomputes the CRC, the count
        # sanity check still rejects the page.
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:10] for k, v in orders_data.columns.items()}
        page = codec.encode(0, slices)
        bad = restamp_checksum(corrupt_count(page, 100_000))
        with pytest.raises(PageFormatError):
            codec.decode(bad)

    def test_column_page_with_impossible_count(self):
        codec = ColumnPageCodec(
            build_codec(CodecSpec(kind=CodecKind.PACK, bits=8), IntType())
        )
        page = codec.encode(0, np.arange(10))
        bad = restamp_checksum(corrupt_count(page, 10**6))
        with pytest.raises(ReproError):
            codec.decode(bad)

    def test_truncated_page(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:10] for k, v in orders_data.columns.items()}
        page = codec.encode(0, slices)
        with pytest.raises(PageFormatError):
            codec.decode(page[: DEFAULT_PAGE_SIZE // 2])

    def test_payload_bit_flip_fails_checksum(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:10] for k, v in orders_data.columns.items()}
        page = bytearray(codec.encode(0, slices))
        page[500] ^= 0x04
        with pytest.raises(ChecksumError):
            codec.decode(bytes(page))

    def test_trailer_bit_flip_fails_checksum(self, orders_data):
        # The CRC covers the trailer's page id and base fields too.
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:10] for k, v in orders_data.columns.items()}
        page = bytearray(codec.encode(7, slices))
        page[-1] ^= 0x80  # high byte of the FOR base
        with pytest.raises(ChecksumError):
            codec.decode(bytes(page))

    def test_dictionary_code_out_of_range(self):
        spec = CodecSpec(kind=CodecKind.DICT, bits=4, dictionary=(10, 20, 30))
        codec = build_codec(spec, IntType())
        payload, state = codec.encode_page(np.array([10, 20, 30]))
        # Flip bits so a code exceeds the dictionary.
        tampered = bytes([0xFF]) + payload[1:]
        with pytest.raises(CompressionError):
            codec.decode_page(tampered, 3, state)

    def test_page_trailer_survives_payload_padding(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        slices = {k: v[:1] for k, v in orders_data.columns.items()}
        page = codec.encode(1234, slices)
        page_id, rows = codec.decode(page)
        assert page_id == 1234
        assert len(rows) == 1
        assert len(page) == DEFAULT_PAGE_SIZE
        # v2 trailer occupies the fixed tail offset: page id, CRC, base.
        trailer = struct.unpack("<IIq", page[-PAGE_TRAILER_BYTES:])
        assert trailer[0] == 1234
        assert trailer[1] == page_checksum(page)


class TestMalformedFiles:
    def test_mixed_page_sizes_rejected(self):
        file = PagedFile("t", page_size=256)
        file.append_page(b"\x00" * 256)
        with pytest.raises(StorageError):
            file.append_page(b"\x00" * 512)

    def test_partial_trailing_bytes_rejected(self):
        # num_pages floors the division, so from_bytes must reject
        # rather than silently drop the torn tail.
        with pytest.raises(StorageError, match="partial page"):
            PagedFile.from_bytes("t", b"\x00" * (256 * 3 + 57), page_size=256)

    def test_whole_page_multiples_accepted(self):
        file = PagedFile.from_bytes("t", b"\x00" * (256 * 3), page_size=256)
        assert file.num_pages == 3

    def test_scanning_respects_file_length(self):
        data = generate_orders(200, seed=1)
        table = load_table(data, Layout.COLUMN)
        custkey = table.column_file("O_CUSTKEY")
        with pytest.raises(StorageError):
            custkey.file.read_page(custkey.file.num_pages)


LAYOUTS = (Layout.ROW, Layout.COLUMN, Layout.PAX)


@pytest.fixture(scope="module")
def saved_tables(tmp_path_factory):
    """One pristine saved directory per layout (copied per test)."""
    root = tmp_path_factory.mktemp("bitflip")
    data = generate_orders(600, seed=31)
    select = tuple(data.schema.attribute_names)
    clean = {}
    for layout in LAYOUTS:
        directory = root / layout.value
        table = load_table(data, layout)
        save_table(table, directory)
        clean[layout] = run_scan(table, ScanQuery("ORDERS", select=select))
    return root, select, clean


class TestRandomBitFlips:
    """Property-style: any single-bit flip is detected, never silent."""

    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("seed", range(5))
    def test_flip_in_page_file_never_silent(
        self, saved_tables, tmp_path, layout, seed
    ):
        root, select, clean = saved_tables
        directory = tmp_path / f"{layout.value}-{seed}"
        shutil.copytree(root / layout.value, directory)
        rng = np.random.default_rng(seed * 7919 + hash(layout.value) % 1000)
        pages_files = sorted(directory.glob("*.pages"))
        target = pages_files[int(rng.integers(len(pages_files)))]
        flip_bit_on_disk(
            target,
            byte=int(rng.integers(target.stat().st_size)),
            bit=int(rng.integers(8)),
        )
        query = ScanQuery("ORDERS", select=select)

        # Strict: the corruption aborts the query.
        with pytest.raises(ChecksumError):
            result = run_scan(open_table(directory), query)
            # Unreachable unless detection failed: would be silent corruption.
            assert result is not None

        # Salvage: the damage is reported and only intact rows return.
        report = CorruptionReport()
        table = open_table(directory, salvage=report)
        result = run_scan(table, query, salvage=True)
        report.merge(result.corruption)
        assert not report.is_clean
        assert not result.is_complete

        clean_result = clean[layout]
        surviving = np.isin(clean_result.positions, result.positions)
        np.testing.assert_array_equal(
            result.positions, clean_result.positions[surviving]
        )
        for name in select:
            np.testing.assert_array_equal(
                result.column(name), clean_result.column(name)[surviving]
            )
        lost = clean_result.num_tuples - result.num_tuples
        assert 0 < lost <= report.estimated_rows_lost

    @pytest.mark.parametrize("seed", range(3))
    def test_flip_in_meta_never_silent(self, saved_tables, tmp_path, seed):
        root, select, _clean = saved_tables
        directory = tmp_path / f"meta-{seed}"
        shutil.copytree(root / Layout.COLUMN.value, directory)
        meta = directory / "meta.json"
        rng = np.random.default_rng(seed)
        flip_bit_on_disk(
            meta,
            byte=int(rng.integers(meta.stat().st_size)),
            bit=int(rng.integers(8)),
        )
        # Metadata cannot be salvaged: every flip must raise — either the
        # meta CRC (ChecksumError) or a parse failure (StorageError).
        with pytest.raises(StorageError):
            open_table(directory)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError) or obj is ReproError

    def test_integrity_errors_are_storage_errors(self):
        assert issubclass(ChecksumError, StorageError)
        assert issubclass(TransientIOError, StorageError)

    def test_one_except_clause_suffices(self, orders_data):
        codec = RowPageCodec(orders_data.schema)
        try:
            codec.decode(b"nope")
        except ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")
