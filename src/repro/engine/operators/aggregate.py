"""Aggregation operators: hash-based and sort-based (Section 2.2.3)."""

from __future__ import annotations

import numpy as np

from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.governance import GovernedAccumulator
from repro.engine.operators.base import Operator
from repro.engine.query import AggregateFunction, AggregateSpec
from repro.errors import EngineError, PlanError


class _AggregateBase(Operator):
    """Shared drain-child / emit-groups machinery."""

    def __init__(self, context: ExecutionContext, child: Operator, spec: AggregateSpec):
        super().__init__(context)
        self.child = child
        self.spec = spec
        self._ready: list[Block] = []
        self._emitted = False

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self) -> str:
        call = self.spec.function.value
        if self.spec.argument is not None:
            call += f"({self.spec.argument})"
        if self.spec.group_by:
            call += f" group by {', '.join(self.spec.group_by)}"
        return call

    def _open(self) -> None:
        self._ready = []
        self._emitted = False

    def _next(self) -> Block | None:
        if not self._emitted:
            self._ready = self._compute()
            self._emitted = True
        if not self._ready:
            return None
        return self._ready.pop(0)

    def _drain_child(self) -> Block:
        # The grouping working set is charged against the query's memory
        # budget at block granularity (reduced-width retry, then abort).
        accumulator = GovernedAccumulator(
            self.context.governance, type(self).__name__
        )
        while True:
            block = self.child.next()
            if block is None:
                break
            accumulator.add(block)
        return accumulator.finish()

    def _compute(self) -> list[Block]:
        raise NotImplementedError

    # --- shared aggregation arithmetic -----------------------------------

    def _group_reduce(
        self,
        group_ids: np.ndarray,
        num_groups: int,
        argument: np.ndarray | None,
    ) -> np.ndarray:
        """Per-group reduction of ``argument`` (or counts)."""
        function = self.spec.function
        counts = np.bincount(group_ids, minlength=num_groups)
        self.events.agg_updates += int(group_ids.size)
        if function is AggregateFunction.COUNT:
            return counts
        if argument is None:
            raise EngineError(f"{function.value} needs an argument column")
        if function is AggregateFunction.SUM:
            return np.bincount(group_ids, weights=argument, minlength=num_groups).astype(np.int64)
        if function is AggregateFunction.AVG:
            sums = np.bincount(group_ids, weights=argument, minlength=num_groups)
            with np.errstate(invalid="ignore", divide="ignore"):
                return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        if function is AggregateFunction.MIN:
            out = np.full(num_groups, np.iinfo(np.int64).max)
            np.minimum.at(out, group_ids, argument)
            return out
        if function is AggregateFunction.MAX:
            out = np.full(num_groups, np.iinfo(np.int64).min)
            np.maximum.at(out, group_ids, argument)
            return out
        raise EngineError(f"unsupported aggregate function: {function}")

    def _result_blocks(
        self,
        group_columns: dict[str, np.ndarray],
        values: np.ndarray,
    ) -> list[Block]:
        name = self._output_name()
        count = len(values)
        block = Block(
            columns={**group_columns, name: values},
            positions=np.arange(count, dtype=np.int64),
        )
        return split_into_blocks(block, self.context.block_size)

    def _output_name(self) -> str:
        return self.spec.output_name()


class HashAggregate(_AggregateBase):
    """Hash-grouped aggregation: one probe per input tuple."""

    def _compute(self) -> list[Block]:
        data = self._drain_child()
        for name in self.spec.group_by:
            if name not in data.columns and len(data):
                raise PlanError(f"group-by attribute {name!r} missing from input")
        argument = None
        if self.spec.argument is not None and len(data):
            argument = data.column(self.spec.argument)

        if not len(data):
            return []

        if self.spec.group_by:
            key_arrays = [data.column(name) for name in self.spec.group_by]
            if len(key_arrays) > 1:
                keys = np.rec.fromarrays(key_arrays, names=list(self.spec.group_by))
                distinct, group_ids = np.unique(keys, return_inverse=True)
                group_columns = {
                    name: np.asarray(distinct[name]) for name in self.spec.group_by
                }
            else:
                distinct, group_ids = np.unique(key_arrays[0], return_inverse=True)
                group_columns = {self.spec.group_by[0]: distinct}
            num_groups = len(distinct)
        else:
            group_ids = np.zeros(len(data), dtype=np.int64)
            num_groups = 1
            group_columns = {}

        self.events.group_lookups += len(data)
        values = self._group_reduce(group_ids, num_groups, argument)
        return self._result_blocks(group_columns, values)


class SortAggregate(_AggregateBase):
    """Sort-based aggregation over input already sorted on the group key.

    Verifies the sort order (cheap) and reduces run-by-run; charges sort
    comparisons only for the run detection, as the input order is free.
    """

    def _compute(self) -> list[Block]:
        data = self._drain_child()
        if not len(data):
            return []
        if not self.spec.group_by:
            raise PlanError("sort aggregation requires a group-by key")
        key_arrays = [data.column(name) for name in self.spec.group_by]
        primary = key_arrays[0]
        if primary.size > 1 and np.any(primary[1:] < primary[:-1]):
            raise EngineError(
                "SortAggregate input is not sorted on "
                f"{self.spec.group_by[0]!r}; use SortOperator or HashAggregate"
            )
        change = np.zeros(len(data), dtype=bool)
        change[0] = True
        for keys in key_arrays:
            change[1:] |= keys[1:] != keys[:-1]
        group_ids = np.cumsum(change) - 1
        num_groups = int(group_ids[-1]) + 1
        self.events.sort_comparisons += len(data)

        argument = None
        if self.spec.argument is not None:
            argument = data.column(self.spec.argument)
        starts = np.flatnonzero(change)
        group_columns = {
            name: keys[starts] for name, keys in zip(self.spec.group_by, key_arrays)
        }
        values = self._group_reduce(group_ids, num_groups, argument)
        return self._result_blocks(group_columns, values)
