"""Figure 2 — the speedup contour over tuple width × cpdb."""

from _common import publish, run_once

from repro.experiments.figures import fig02_contour


def bench_figure2_contour(benchmark):
    out = run_once(benchmark, lambda: fig02_contour.run())
    publish(out, "figure_02_contour.txt")

    # Paper shape: rows win only for lean tuples in CPU-starved
    # configurations; columns win everywhere else.
    assert min(out.series["cpdb_144"]) > 1.0
    assert out.series["cpdb_9"][0] < 1.0
    assert out.series["cpdb_9"][-1] > 1.0
