"""A minimal catalog: named tables, each possibly in both layouts.

The paper's engine uses precompiled queries against known tables; the
catalog gives examples and the experiment harness a single place to
register loaded tables and look them up by name and layout.  It also
tracks horizontally partitioned tables (see
:mod:`repro.storage.partition`) with their partition manifests, so the
parallel executor can resolve a name to per-partition shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.layout import Layout
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.storage.partition import PartitionedTable


class Catalog:
    """Registry of loaded tables keyed by (name, layout)."""

    def __init__(self) -> None:
        self._tables: dict[tuple[str, Layout], Table] = {}
        self._partitioned: dict[tuple[str, Layout], "PartitionedTable"] = {}

    def register(self, table: Table) -> None:
        """Register a table under its schema name and layout."""
        key = (table.schema.name, table.layout)
        if key in self._tables:
            raise StorageError(
                f"table {table.schema.name!r} already registered as {table.layout}"
            )
        self._tables[key] = table

    def replace(self, table: Table) -> None:
        """Register or overwrite (used after a write-store merge)."""
        self._tables[(table.schema.name, table.layout)] = table

    def get(self, name: str, layout: Layout) -> Table:
        """Look up a table; raises when absent."""
        try:
            return self._tables[(name, layout)]
        except KeyError as exc:
            raise StorageError(
                f"no table {name!r} with layout {layout} in catalog"
            ) from exc

    def has(self, name: str, layout: Layout) -> bool:
        return (name, layout) in self._tables

    def names(self) -> list[str]:
        """Sorted distinct table names."""
        return sorted({name for name, _layout in self._tables})

    def __len__(self) -> int:
        return len(self._tables)

    # --- partitioned tables ------------------------------------------------

    def register_partitioned(self, ptable: "PartitionedTable") -> None:
        """Register a partitioned table under its schema name and layout."""
        key = (ptable.schema.name, ptable.layout)
        if key in self._partitioned:
            raise StorageError(
                f"partitioned table {ptable.schema.name!r} already registered "
                f"as {ptable.layout}"
            )
        self._partitioned[key] = ptable

    def replace_partitioned(self, ptable: "PartitionedTable") -> None:
        """Register or overwrite (used after repartitioning)."""
        self._partitioned[(ptable.schema.name, ptable.layout)] = ptable

    def get_partitioned(self, name: str, layout: Layout) -> "PartitionedTable":
        """Look up a partitioned table; raises when absent."""
        try:
            return self._partitioned[(name, layout)]
        except KeyError as exc:
            raise StorageError(
                f"no partitioned table {name!r} with layout {layout} in catalog"
            ) from exc

    def has_partitioned(self, name: str, layout: Layout) -> bool:
        return (name, layout) in self._partitioned

    def partition_manifest(self, name: str, layout: Layout) -> dict:
        """The registered table's partition manifest (row ranges)."""
        return self.get_partitioned(name, layout).manifest()

    def partitioned_names(self) -> list[str]:
        """Sorted distinct partitioned-table names."""
        return sorted({name for name, _layout in self._partitioned})
