"""Operating directly on compressed data (the Abadi et al. extension).

The conclusion notes column stores gain further from "the ability to
operate directly on compressed data".  For dictionary-coded columns the
engine can evaluate SARGable predicates on the *codes*: the dictionary
is sorted (codes are ranks), so every comparison maps onto a comparison
against a code boundary.  Qualifying values are then decoded — only
them — for the output.

Enabled per execution through
:attr:`repro.engine.context.ExecutionContext.compressed_execution`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.dictionary import DictionaryCodec
from repro.engine.predicate import ComparisonOp, Predicate


@dataclass(frozen=True)
class CodePredicate:
    """A predicate rewritten onto dictionary codes.

    ``op``/``code`` compare against a code boundary; ``constant`` short
    circuits predicates whose value boundary falls outside the domain.
    """

    op: ComparisonOp | None
    code: int = 0
    constant: bool | None = None

    def evaluate(self, codes: np.ndarray) -> np.ndarray:
        if self.constant is not None:
            return np.full(len(codes), self.constant, dtype=bool)
        return Predicate("code", self.op, self.code).evaluate(codes)


def rewrite_predicate(
    predicate: Predicate, codec: DictionaryCodec
) -> CodePredicate | None:
    """Map one value predicate onto dictionary codes, or ``None``.

    Requires the codec's dictionary to be sorted ascending (it is: the
    advisor builds it with ``np.unique``), so codes preserve order.
    """
    dictionary = codec.dictionary
    if dictionary.size > 1 and np.any(dictionary[1:] < dictionary[:-1]):
        return None
    value = np.asarray(predicate.value, dtype=dictionary.dtype)
    left = int(np.searchsorted(dictionary, value, side="left"))
    right = int(np.searchsorted(dictionary, value, side="right"))
    exists = right > left
    op = predicate.op
    if op is ComparisonOp.EQ:
        if not exists:
            return CodePredicate(op=None, constant=False)
        return CodePredicate(op=ComparisonOp.EQ, code=left)
    if op is ComparisonOp.NE:
        if not exists:
            return CodePredicate(op=None, constant=True)
        return CodePredicate(op=ComparisonOp.NE, code=left)
    if op is ComparisonOp.LE:
        boundary = right - 1
        if boundary < 0:
            return CodePredicate(op=None, constant=False)
        return CodePredicate(op=ComparisonOp.LE, code=boundary)
    if op is ComparisonOp.LT:
        boundary = left - 1
        if boundary < 0:
            return CodePredicate(op=None, constant=False)
        return CodePredicate(op=ComparisonOp.LE, code=boundary)
    if op is ComparisonOp.GE:
        if left >= dictionary.size:
            return CodePredicate(op=None, constant=False)
        return CodePredicate(op=ComparisonOp.GE, code=left)
    if op is ComparisonOp.GT:
        if right >= dictionary.size:
            return CodePredicate(op=None, constant=False)
        return CodePredicate(op=ComparisonOp.GE, code=right)
    return None


def rewrite_all(
    predicates: tuple[Predicate, ...], codec: DictionaryCodec
) -> list[CodePredicate] | None:
    """Rewrite every predicate, or ``None`` when any one cannot be."""
    rewritten = []
    for predicate in predicates:
        code_predicate = rewrite_predicate(predicate, codec)
        if code_predicate is None:
            return None
        rewritten.append(code_predicate)
    return rewritten
