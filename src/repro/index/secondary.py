"""Unclustered secondary index: sorted (value, RID) pairs.

The classical design the paper describes: the query probes the index,
constructs a list of qualifying Record IDs, and sorts that list to
minimize disk-head movement before fetching.
"""

from __future__ import annotations

import numpy as np

from repro.engine.predicate import Predicate
from repro.errors import PlanError


class SecondaryIndex:
    """A dense secondary index over one attribute of a table."""

    def __init__(self, attr: str, values: np.ndarray):
        if len(values) == 0:
            raise PlanError(f"cannot index an empty column {attr!r}")
        self.attr = attr
        self.num_rows = len(values)
        order = np.argsort(values, kind="stable")
        self._sorted_values = np.asarray(values)[order]
        self._sorted_rids = order.astype(np.int64)

    @property
    def entry_count(self) -> int:
        return self.num_rows

    def lookup_range(self, low, high) -> np.ndarray:
        """RIDs with ``low <= value <= high``, sorted by RID."""
        left = int(np.searchsorted(self._sorted_values, low, side="left"))
        right = int(np.searchsorted(self._sorted_values, high, side="right"))
        rids = self._sorted_rids[left:right]
        return np.sort(rids)

    def lookup_predicate(self, predicate: Predicate) -> np.ndarray:
        """RIDs qualifying under a SARGable predicate, sorted by RID.

        Range and equality predicates use the sorted entries; only the
        comparisons a B-tree could serve are accepted.
        """
        if predicate.attr != self.attr:
            raise PlanError(
                f"index is on {self.attr!r}, predicate on {predicate.attr!r}"
            )
        from repro.engine.predicate import ComparisonOp as Op

        lo_sentinel = self._sorted_values[0]
        hi_sentinel = self._sorted_values[-1]
        op = predicate.op
        value = predicate.value
        if op is Op.LE:
            return self.lookup_range(lo_sentinel, value)
        if op is Op.LT:
            left = 0
            right = int(np.searchsorted(self._sorted_values, value, side="left"))
            return np.sort(self._sorted_rids[left:right])
        if op is Op.GE:
            return self.lookup_range(value, hi_sentinel)
        if op is Op.GT:
            left = int(np.searchsorted(self._sorted_values, value, side="right"))
            return np.sort(self._sorted_rids[left:])
        if op is Op.EQ:
            return self.lookup_range(value, value)
        raise PlanError(f"secondary index cannot serve operator {op.value!r}")

    def selectivity_of(self, predicate: Predicate) -> float:
        """Fraction of rows the predicate qualifies, from the index."""
        return self.lookup_predicate(predicate).size / self.num_rows
