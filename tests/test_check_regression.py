"""Regression sentinel: comparison logic, baseline picking, CLI verdicts."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest


@pytest.fixture(scope="module")
def sentinel():
    spec = importlib.util.spec_from_file_location(
        "check_regression",
        pathlib.Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "check_regression.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _artifact(scale: float = 1.0, stamp: str = "2026-08-08T00:00:00+00:00"):
    return {
        "arms": [
            {
                "clients": clients,
                "share_scans": share,
                "makespan_seconds": 0.4 * clients * scale,
                "qps": 80.0 / scale,
                "latency_p50_seconds": 0.020 * clients * scale,
                "latency_p95_seconds": 0.040 * clients * scale,
                "latency_p99_seconds": 0.050 * clients * scale,
            }
            for clients in (4, 16)
            for share in (True, False)
        ],
        "provenance": {
            "timestamp_utc": stamp,
            "calibration_fingerprint": "abc123",
            "python": "3.12.0",
            "numpy": "2.0.0",
        },
    }


class TestCompare:
    def test_identical_artifacts_pass(self, sentinel):
        outcome = sentinel.compare(_artifact(), _artifact(), 0.25, 0.002)
        assert outcome["regressions"] == []
        assert outcome["warnings"] == []
        assert len(outcome["checked"]) == 4 * len(sentinel.METRICS)

    def test_slowdown_past_threshold_is_flagged(self, sentinel):
        outcome = sentinel.compare(_artifact(1.5), _artifact(), 0.25, 0.002)
        flagged = {row["metric"] for row in outcome["regressions"]}
        assert flagged == {"p50", "p95", "p99", "makespan", "qps"}

    def test_noise_floor_suppresses_tiny_absolute_deltas(self, sentinel):
        current, baseline = _artifact(), _artifact()
        # +60% relative on an 80 us latency: relative gate alone would
        # fire, the 2 ms noise floor must not.
        for artifact in (current, baseline):
            for arm in artifact["arms"]:
                arm["latency_p50_seconds"] = 0.00008
        for arm in current["arms"]:
            arm["latency_p50_seconds"] *= 1.6
        outcome = sentinel.compare(current, baseline, 0.25, 0.002)
        assert all(row["metric"] != "p50" for row in outcome["regressions"])

    def test_speedup_never_flags(self, sentinel):
        outcome = sentinel.compare(_artifact(0.5), _artifact(), 0.25, 0.002)
        assert outcome["regressions"] == []

    def test_qps_drop_flags_without_noise_floor(self, sentinel):
        current, baseline = _artifact(), _artifact()
        for arm in current["arms"]:
            arm["qps"] = arm["qps"] / 1.4
        outcome = sentinel.compare(current, baseline, 0.25, 0.002)
        assert {row["metric"] for row in outcome["regressions"]} == {"qps"}

    def test_unmatched_arms_warn_instead_of_misaligning(self, sentinel):
        current, baseline = _artifact(), _artifact()
        current["arms"] = current["arms"][:-1]
        outcome = sentinel.compare(current, baseline, 0.25, 0.002)
        assert any("missing from current" in w for w in outcome["warnings"])
        assert outcome["regressions"] == []

    def test_provenance_mismatch_warns(self, sentinel):
        baseline = _artifact()
        baseline["provenance"]["calibration_fingerprint"] = "other"
        outcome = sentinel.compare(_artifact(), baseline, 0.25, 0.002)
        assert any("calibration_fingerprint" in w for w in outcome["warnings"])


class TestBaselinePicking:
    def test_newest_timestamp_wins(self, sentinel, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_artifact(stamp="2026-01-01T00:00:00+00:00")))
        new.write_text(json.dumps(_artifact(stamp="2026-06-01T00:00:00+00:00")))
        path, artifact = sentinel.pick_baseline([str(tmp_path / "*.json")])
        assert path == str(new)
        assert artifact["provenance"]["timestamp_utc"].startswith("2026-06")

    def test_corrupt_baselines_are_skipped(self, sentinel, tmp_path, capsys):
        (tmp_path / "bad.json").write_text("{not json")
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_artifact()))
        path, _ = sentinel.pick_baseline([str(tmp_path / "*.json")])
        assert path == str(good)

    def test_no_match_returns_none(self, sentinel, tmp_path):
        assert sentinel.pick_baseline([str(tmp_path / "*.json")]) is None


class TestCli:
    def _write(self, tmp_path, name, artifact):
        path = tmp_path / name
        path.write_text(json.dumps(artifact))
        return str(path)

    def test_pass_and_fail_exit_codes(self, sentinel, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", _artifact())
        baseline = self._write(tmp_path, "baseline.json", _artifact())
        assert (
            sentinel.main(["--current", current, "--baseline", baseline]) == 0
        )
        slowed = self._write(tmp_path, "slow.json", _artifact(1.8))
        assert (
            sentinel.main(["--current", slowed, "--baseline", baseline]) == 1
        )
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_json_report(self, sentinel, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", _artifact())
        baseline = self._write(tmp_path, "baseline.json", _artifact())
        assert (
            sentinel.main(
                ["--current", current, "--baseline", baseline, "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == []
        assert payload["baseline"] == baseline

    def test_missing_baseline_passes_unless_required(
        self, sentinel, tmp_path, capsys
    ):
        current = self._write(tmp_path, "current.json", _artifact())
        nothing = str(tmp_path / "none-*.json")
        assert sentinel.main(["--current", current, "--baseline", nothing]) == 0
        assert (
            sentinel.main(
                [
                    "--current", current,
                    "--baseline", nothing,
                    "--require-baseline",
                ]
            )
            == 2
        )
        capsys.readouterr()

    def test_missing_current_is_a_usage_error(self, sentinel, tmp_path, capsys):
        assert (
            sentinel.main(["--current", str(tmp_path / "absent.json")]) == 2
        )
        capsys.readouterr()

    def test_self_test_passes_on_a_real_artifact(
        self, sentinel, tmp_path, capsys
    ):
        current = self._write(tmp_path, "current.json", _artifact())
        assert sentinel.main(["--current", current, "--self-test"]) == 0
        assert "self-test ok" in capsys.readouterr().out
