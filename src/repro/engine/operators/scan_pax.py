"""PAX-table scanner.

Reads whole pages (row-store I/O) but only decodes — and only streams
through the cache — the minipages of the attributes the query accesses.
This is the "increased spatial locality to improve cache performance"
of PAX, with I/O identical to a row store (Section 6).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cpusim.cache import page_lines
from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.engine.operators.scan_row import normalize_row_range
from repro.engine.predicate import Predicate
from repro.errors import PlanError
from repro.storage.table import PaxTable


class PaxScanner(Operator):
    """Scan a :class:`PaxTable`, touching only the accessed minipages."""

    def __init__(
        self,
        context: ExecutionContext,
        table: PaxTable,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        row_range: tuple[int, int] | None = None,
    ):
        super().__init__(context)
        if not select:
            raise PlanError("PAX scanner needs a non-empty select list")
        self.table = table
        for name in select:
            table.schema.attribute(name)
        for predicate in predicates:
            table.schema.attribute(predicate.attr)
        self.select = tuple(select)
        self.predicates = tuple(predicates)
        self.row_range = normalize_row_range(row_range, table.num_rows)
        order = [p.attr for p in predicates]
        order += [name for name in select if name not in order]
        seen: set[str] = set()
        self._attrs = [n for n in order if not (n in seen or seen.add(n))]
        self._page_index = 0
        self._ready: deque[Block] = deque()
        self._row_base = 0
        self._emitted_any = False

    def scan_attribute_order(self) -> list[str]:
        """The minipages this scan decodes."""
        return list(self._attrs)

    def describe(self) -> str:
        detail = f"{self.table.schema.name}: {', '.join(self.select)}"
        if self.predicates:
            detail += f" | {len(self.predicates)} predicate(s)"
        lo, hi = self.row_range
        if (lo, hi) != (0, self.table.num_rows):
            detail += f" | rows [{lo}, {hi})"
        return detail

    def _open(self) -> None:
        self._page_index = 0
        self._ready.clear()
        self._row_base = 0
        self._emitted_any = False

    def _next(self) -> Block | None:
        lo, hi = self.row_range
        while not self._ready:
            if self._page_index >= self.table.file.num_pages or self._row_base >= hi:
                if not self._emitted_any:
                    self._emitted_any = True
                    return self._empty_block()
                return None
            self._governance_check()
            index = self._page_index
            self._page_index += 1
            if self._row_base + self.table.row_span_of_page(index) <= lo:
                # Page entirely before the row window: skip without I/O.
                self._row_base += self.table.row_span_of_page(index)
                continue
            self._process_page(index)
        self._emitted_any = True
        return self._ready.popleft()

    def _empty_block(self) -> Block:
        columns = {
            name: np.zeros(
                0, dtype=self.table.schema.attribute(name).attr_type.numpy_dtype()
            )
            for name in self.select
        }
        return Block(columns=columns, positions=np.zeros(0, dtype=np.int64))

    def _process_page(self, index: int) -> None:
        events = self.events
        calibration = self.context.calibration
        codec = self.table.page_codec
        span = self.table.row_span_of_page(index)

        def decode_accessed():
            page = self.table.file.read_page(index)
            return {name: codec.decode_attribute(page, name) for name in self._attrs}

        decoded = self._salvage_decode(
            decode_accessed, self.table.file.name, index, span
        )
        if decoded is None:
            # Salvage: skip the page, keep Record IDs of later pages right.
            self._row_base += span
            return

        columns: dict[str, np.ndarray] = {}
        count = 0
        for name in self._attrs:
            _pid, count, values = decoded[name]
            columns[name] = values
            spec = self.table.schema.attribute(name).spec
            events.count_decode(spec.kind, count)
            bits = codec.attribute_bits(name)
            # Only the accessed minipages move through the caches.
            events.mem_seq_lines += page_lines(count, bits, calibration.l2_line_bytes)
            events.l1_lines += page_lines(count, bits, calibration.l1_line_bytes)

        # Restrict to the scanner's row window: minipages are decoded
        # (and charged) whole, but out-of-window tuples are not examined.
        lo, hi = self.row_range
        start = max(0, lo - self._row_base)
        stop = max(start, min(count, hi - self._row_base))
        in_range = stop - start

        events.pages_touched += 1
        events.tuples_examined += in_range

        if in_range == count:
            mask = np.ones(count, dtype=bool)
        else:
            mask = np.zeros(count, dtype=bool)
            mask[start:stop] = True
        for index, predicate in enumerate(self.predicates):
            candidates = in_range if index == 0 else int(np.count_nonzero(mask))
            events.predicate_evals += candidates
            events.predicate_eval_bytes += (
                candidates * self.table.schema.attribute(predicate.attr).width
            )
            mask &= predicate.evaluate(columns[predicate.attr])

        qualified = int(np.count_nonzero(mask))
        if qualified:
            selected_width = sum(
                self.table.schema.attribute(name).width for name in self.select
            )
            events.values_copied += qualified * len(self.select)
            events.bytes_copied += qualified * selected_width
            positions = self._row_base + np.flatnonzero(mask)
            block = Block(
                columns={name: columns[name][mask] for name in self.select},
                positions=positions,
            )
            self._ready.extend(split_into_blocks(block, self.context.block_size))
        self._row_base += count
