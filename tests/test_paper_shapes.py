"""Integration tests: the paper's headline shapes must reproduce.

Each test regenerates (a small-rows version of) one figure and asserts
the qualitative result the paper reports — who wins, where crossovers
fall, which components move.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig02_contour,
    fig06_baseline,
    fig07_selectivity,
    fig08_narrow,
    fig09_compression,
    fig10_prefetch,
    fig11_competing,
    model_validation,
    table1_trends,
)

ROWS = 3_000


@pytest.fixture(scope="module")
def fig6():
    return fig06_baseline.run(num_rows=ROWS)


@pytest.fixture(scope="module")
def fig7():
    return fig07_selectivity.run(num_rows=ROWS)


class TestFigure2:
    def test_row_advantage_only_lean_and_cpu_bound(self):
        out = fig02_contour.run()
        widths = out.series["widths"]
        # At cpdb >= 72 columns win everywhere.
        assert min(out.series["cpdb_144"]) > 1.0
        # At cpdb 9, rows win for lean tuples but lose for wide ones.
        low = out.series["cpdb_9"]
        assert low[0] < 1.0  # 4-byte tuples
        assert low[-1] > 1.0  # 36-byte tuples
        # Speedup grows with width at fixed cpdb.
        assert low == sorted(low)
        assert len(widths) == len(low)


class TestFigure6:
    def test_row_store_flat_in_projectivity(self, fig6):
        elapsed = fig6.series["row_elapsed"]
        assert max(elapsed) - min(elapsed) < 0.02 * max(elapsed)

    def test_row_store_io_bound_near_paper_time(self, fig6):
        # 9.5 GB over 180 MB/s: ~52.5s (the paper plots ~55s).
        assert fig6.series["row_elapsed"][0] == pytest.approx(52.5, rel=0.05)

    def test_column_store_elapsed_grows_with_bytes(self, fig6):
        col = fig6.series["col_elapsed"]
        assert all(b >= a - 1e-6 for a, b in zip(col, col[1:]))

    def test_crossover_above_85_percent_projectivity(self, fig6):
        bytes_sel = fig6.series["selected_bytes"]
        row = fig6.series["row_elapsed"]
        col = fig6.series["col_elapsed"]
        crossing = [
            bytes_sel[i] / 150 for i in range(len(col)) if col[i] > row[i]
        ]
        assert crossing, "the column store should lose at full projectivity"
        assert min(crossing) >= 0.85

    def test_column_cpu_exceeds_row_cpu_at_high_projectivity(self, fig6):
        assert fig6.series["col_cpu"][-1] > fig6.series["row_cpu"][-1]

    def test_string_attributes_add_l2_component(self, fig6):
        l2 = fig6.series["col_l2"]
        # Attributes 9-11 are the strings; the L2 component must jump.
        assert l2[10] > l2[7] + 0.2


class TestFigure7:
    def test_low_selectivity_flattens_column_cpu(self, fig6, fig7):
        cpu_01 = fig7.series["col_cpu"]
        cpu_10 = fig6.series["col_cpu"]
        # Growth from 1 to 16 attributes (sys time excluded: compare
        # against the growth at 10% selectivity).
        growth_01 = cpu_01[-1] - cpu_01[0]
        growth_10 = cpu_10[-1] - cpu_10[0]
        assert growth_01 < 0.5 * growth_10

    def test_io_unchanged_by_selectivity(self, fig6, fig7):
        np.testing.assert_allclose(
            fig7.series["col_elapsed"][-1], fig6.series["col_elapsed"][-1], rtol=0.02
        )

    def test_string_memory_delays_disappear(self, fig7):
        l2 = fig7.series["col_l2"]
        assert max(l2) < 0.3


class TestFigure8:
    def test_narrow_tuples_hide_memory_delays(self):
        out = fig08_narrow.run(num_rows=ROWS)
        assert max(out.series["col_l2"]) < 0.05
        # Row scan of 1.9 GB: ~10.8 s.
        assert out.series["row_elapsed"][0] == pytest.approx(10.8, rel=0.05)

    def test_column_cpu_overtakes_row_cpu(self):
        out = fig08_narrow.run(num_rows=ROWS)
        assert out.series["col_cpu"][-1] > out.series["row_cpu"][-1]


class TestFigure9:
    @pytest.fixture(scope="class")
    def fig9(self):
        return fig09_compression.run(num_rows=ROWS)

    def test_column_store_becomes_cpu_bound(self, fig9):
        # Elapsed ~= CPU for the compressed column store.
        np.testing.assert_allclose(
            fig9.series["col_delta_elapsed"], fig9.series["col_delta_cpu"], rtol=0.01
        )

    def test_for_delta_jumps_at_second_attribute(self, fig9):
        delta_cpu = fig9.series["col_delta_cpu"]
        for_cpu = fig9.series["col_for_cpu"]
        jump_delta = delta_cpu[1] - delta_cpu[0]
        jump_for = for_cpu[1] - for_cpu[0]
        assert jump_delta > jump_for

    def test_row_store_cpu_rises_with_decompression(self, fig9):
        row_cpu = fig9.series["row_cpu"]
        assert row_cpu[-1] > row_cpu[0]

    def test_crossover_moves_left_vs_uncompressed(self, fig9):
        plain = fig08_narrow.run(num_rows=ROWS)

        def crossover(out, col_key):
            for sel, row, col in zip(
                out.series["selected_bytes"],
                out.series["row_elapsed"],
                out.series[col_key],
            ):
                if col > row:
                    return sel
            return None

        packed_cross = crossover(fig9, "col_delta_elapsed")
        plain_cross = crossover(plain, "col_elapsed")
        assert packed_cross is not None
        assert plain_cross is None or packed_cross < plain_cross


class TestFigure10:
    def test_prefetch_ordering(self):
        out = fig10_prefetch.run(num_rows=ROWS)
        # At full projectivity, smaller prefetch = slower column store.
        last = -1
        previous = None
        for depth in (2, 4, 8, 16, 48):
            value = out.series[f"col_depth_{depth}"][last]
            if previous is not None:
                assert value < previous
            previous = value
        # The row store is untouched by prefetch depth and flat.
        row = out.series["row_elapsed"]
        assert max(row) - min(row) < 1e-6


class TestFigure11:
    @pytest.fixture(scope="class")
    def fig11(self):
        return fig11_competing.run(num_rows=ROWS)

    @pytest.mark.parametrize("depth", [48, 8, 2])
    def test_column_beats_row_in_all_configurations(self, fig11, depth):
        row = fig11.series[f"row_{depth}"]
        col = fig11.series[f"col_{depth}"]
        assert all(c < r for c, r in zip(col, row))

    @pytest.mark.parametrize("depth", [48, 8, 2])
    def test_slow_variant_loses_its_edge(self, fig11, depth):
        fast = fig11.series[f"col_{depth}"]
        slow = fig11.series[f"col_slow_{depth}"]
        assert all(s >= f for f, s in zip(fast, slow))
        # At full projectivity the slow variant approaches the row store.
        row_last = fig11.series[f"row_{depth}"][-1]
        assert slow[-1] == pytest.approx(row_last, rel=0.15)


class TestTable1:
    def test_all_trends_hold(self):
        out = table1_trends.run(num_rows=ROWS)
        assert all(v == 1.0 for v in out.series["holds"])


class TestModelValidation:
    def test_model_within_25_percent(self):
        out = model_validation.run(num_rows=ROWS)
        measured = np.array(out.series["measured"])
        predicted = np.array(out.series["predicted"])
        rel_err = np.abs(predicted - measured) / measured
        assert rel_err.max() < 0.25
