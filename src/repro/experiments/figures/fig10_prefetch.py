"""Figure 10 — effect of prefetch size (ORDERS scan, no competition).

With a single scan in the system, prefetch depth does not affect the
row store at all; the column store degrades steadily as the depth
shrinks because the disks spend proportionally more time seeking
between column files than reading.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_orders

SELECTIVITY = 0.10
PREDICATE_ATTR = "O_ORDERDATE"
PREFETCH_DEPTHS = (2, 4, 8, 16, 48)


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
    depths: tuple[int, ...] = PREFETCH_DEPTHS,
) -> ExperimentOutput:
    """Regenerate Figure 10."""
    config = config or ExperimentConfig()
    prepared = prepare_orders(num_rows)
    predicate = prepared.predicate(PREDICATE_ATTR, SELECTIVITY)

    table = FigureResult(
        title="Elapsed time (s) vs selected attributes, by prefetch depth",
        headers=["attrs", "sel bytes", "row"]
        + [f"col depth={d}" for d in depths],
    )
    series: dict[str, list[float]] = {"selected_bytes": [], "row_elapsed": []}
    for depth in depths:
        series[f"col_depth_{depth}"] = []

    for k in range(1, len(prepared.schema) + 1):
        query = ScanQuery(
            prepared.schema.name,
            select=prepared.attrs_prefix(k),
            predicates=(predicate,),
        )
        row = measure_scan(prepared.row, query, config)
        cells: list[object] = [k, row.selected_bytes, round(row.elapsed, 2)]
        series["selected_bytes"].append(row.selected_bytes)
        series["row_elapsed"].append(row.elapsed)
        for depth in depths:
            measurement = measure_scan(
                prepared.column, query, config.with_(prefetch_depth=depth)
            )
            cells.append(round(measurement.elapsed, 2))
            series[f"col_depth_{depth}"].append(measurement.elapsed)
        table.add_row(*cells)

    return ExperimentOutput(
        name="Figure 10: prefetch-depth sweep (ORDERS)",
        tables=[table],
        series=series,
    )
