"""Robustness — are the conclusions artifacts of the calibration?

The per-event instruction counts in
:mod:`repro.cpusim.calibration` are the reproduction's only free
parameters.  This experiment perturbs each load-bearing constant by
×0.5 and ×2 and re-checks the paper's two headline claims:

1. Figure 6's crossover stays in the high-projectivity region (the
   column store wins at 50 % projection of LINEITEM);
2. Figure 2's corner sign holds (rows win lean tuples at low cpdb,
   columns win wide tuples at high cpdb).

If a claim flipped under a 2x miscalibration, the reproduction would
be telling us about its constants, not about the architectures.
"""

from __future__ import annotations

from repro.engine.query import ScanQuery
from repro.experiments.config import DEFAULT_EXECUTED_ROWS, ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.experiments.runner import measure_scan
from repro.experiments.workloads import prepare_lineitem
from repro.model.params import QueryShape
from repro.model.speedup import SpeedupModel

#: The constants that carry the CPU-side conclusions.
PERTURBED_CONSTANTS = (
    "inst_tuple_iter_row",
    "inst_value_iter_col",
    "inst_position",
    "inst_predicate",
    "sys_cycles_per_byte",
    "random_miss_cycles",
    "seek_seconds",
)
FACTORS = (0.5, 2.0)


def _claims_hold(config: ExperimentConfig, prepared) -> tuple[bool, bool, float]:
    """(claim 1, claim 2, half-projection speedup) under one calibration."""
    predicate = prepared.predicate("L_PARTKEY", 0.10)
    half = ScanQuery(
        "LINEITEM", select=prepared.attrs_prefix(8), predicates=(predicate,)
    )
    row = measure_scan(prepared.row, half, config)
    column = measure_scan(prepared.column, half, config)
    speedup_half = row.elapsed / column.elapsed
    claim1 = speedup_half > 1.0

    model = SpeedupModel(calibration=config.calibration)
    lean = QueryShape(4.0, 2.0, 0.10, 8, 4)
    wide = QueryShape(36.0, 18.0, 0.10, 8, 4)
    claim2 = model.predict(lean, cpdb=9) < model.predict(wide, cpdb=144)
    return claim1, claim2, speedup_half


def run(
    num_rows: int = DEFAULT_EXECUTED_ROWS,
    config: ExperimentConfig | None = None,
) -> ExperimentOutput:
    """Perturb each constant and re-check the headline claims."""
    base = config or ExperimentConfig()
    prepared = prepare_lineitem(num_rows)

    table = FigureResult(
        title="Headline claims under x0.5 / x2 calibration perturbations",
        headers=[
            "constant",
            "factor",
            "50%-projection speedup",
            "columns win at 50%",
            "Fig2 corner ordering",
        ],
    )
    series: dict[str, list[float]] = {"claim1": [], "claim2": [], "speedup": []}

    claim1, claim2, speedup = _claims_hold(base, prepared)
    table.add_row("(baseline)", 1.0, round(speedup, 2), str(claim1), str(claim2))
    series["claim1"].append(1.0 if claim1 else 0.0)
    series["claim2"].append(1.0 if claim2 else 0.0)
    series["speedup"].append(speedup)

    for constant in PERTURBED_CONSTANTS:
        for factor in FACTORS:
            value = getattr(base.calibration, constant) * factor
            calibration = base.calibration.with_overrides(**{constant: value})
            perturbed = base.with_(calibration=calibration)
            claim1, claim2, speedup = _claims_hold(perturbed, prepared)
            table.add_row(
                constant, factor, round(speedup, 2), str(claim1), str(claim2)
            )
            series["claim1"].append(1.0 if claim1 else 0.0)
            series["claim2"].append(1.0 if claim2 else 0.0)
            series["speedup"].append(speedup)

    return ExperimentOutput(
        name="Robustness: calibration sensitivity",
        tables=[table],
        series=series,
    )
