"""Bounded exponential-backoff retry for transient storage reads.

Only :class:`~repro.errors.TransientIOError` is retried — it marks
faults that may not recur (flaky device, injected fault).  Permanent
corruption (:class:`~repro.errors.ChecksumError`,
:class:`~repro.errors.PageFormatError`) is never retried: rereading the
same bad bytes cannot help.

The policy is deterministic given its seed: jitter comes from a private
``random.Random``, and the sleep function is injectable so tests (and
the in-memory page files, whose "transient" faults are injected) never
actually block.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import TransientIOError
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as flight

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Capped exponential backoff with seeded jitter."""

    #: Total tries, including the first one.
    max_attempts: int = 4
    #: Sleep before the first retry, in seconds.
    base_delay: float = 0.001
    #: Backoff multiplier per retry.
    multiplier: float = 2.0
    #: Ceiling on any single sleep, in seconds.
    max_delay: float = 0.050
    #: Fraction of the delay randomized away (0 → fully deterministic).
    jitter: float = 0.5
    #: Jitter seed, so backoff schedules are reproducible.
    seed: int = 0
    #: Injectable sleeper (tests pass a no-op to keep retries instant).
    sleep: Callable[[float], None] = time.sleep
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        self._rng = random.Random(self.seed)

    def delay_for(self, retry_index: int) -> float:
        """Sleep before retry number ``retry_index`` (0-based), jittered."""
        delay = min(self.base_delay * self.multiplier**retry_index, self.max_delay)
        if self.jitter:
            delay *= 1.0 - self.jitter * self._rng.random()
        return delay


#: Shared default: 4 attempts, 1 ms → 50 ms backoff.  Module-level so
#: every :class:`~repro.storage.pagefile.PagedFile` does not carry its
#: own RNG state.
DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_io(operation: Callable[[], T], policy: RetryPolicy | None = None) -> T:
    """Run ``operation``, retrying ``TransientIOError`` per ``policy``.

    Raises the last ``TransientIOError`` once attempts are exhausted;
    every other exception propagates immediately.
    """
    policy = policy or DEFAULT_RETRY_POLICY
    for retry_index in range(policy.max_attempts):
        try:
            return operation()
        except TransientIOError:
            if retry_index == policy.max_attempts - 1:
                obs_metrics.RETRY_EXHAUSTED.inc()
                flight.record(
                    "storage.retry_exhausted", attempts=policy.max_attempts
                )
                raise
            obs_metrics.RETRY_ATTEMPTS.inc()
            delay = policy.delay_for(retry_index)
            obs_metrics.RETRY_BACKOFF_SECONDS.inc(delay)
            flight.record(
                "storage.retry",
                attempt=retry_index + 1,
                delay_s=round(delay, 6),
            )
            policy.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
