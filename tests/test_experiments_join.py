"""measure_join and join-analysis experiment tests."""

import pytest

from repro.data.tpch import generate_tpch_pair
from repro.engine.query import ScanQuery
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import measure_join
from repro.storage.layout import Layout
from repro.storage.loader import load_table


@pytest.fixture(scope="module")
def join_setup():
    orders, lineitem = generate_tpch_pair(400, seed=31)
    return {
        "orders": orders,
        "lineitem": lineitem,
        "orders_row": load_table(orders, Layout.ROW),
        "orders_col": load_table(orders, Layout.COLUMN),
        "line_row": load_table(lineitem, Layout.ROW),
        "line_col": load_table(lineitem, Layout.COLUMN),
    }


def queries(lineitem, fact_attrs=("L_ORDERKEY", "L_EXTENDEDPRICE")):
    return (
        ScanQuery("ORDERS", select=("O_ORDERKEY", "O_ORDERPRIORITY")),
        ScanQuery("LINEITEM", select=tuple(fact_attrs)),
    )


class TestMeasureJoin:
    def test_join_produces_all_matches(self, join_setup):
        left_query, right_query = queries(join_setup["lineitem"])
        m = measure_join(
            join_setup["orders_col"],
            left_query,
            join_setup["line_col"],
            right_query,
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        assert m.result_tuples == join_setup["lineitem"].num_rows

    def test_right_cardinality_scales_by_ratio(self, join_setup):
        left_query, right_query = queries(join_setup["lineitem"])
        config = ExperimentConfig(cardinality=60_000_000)
        m = measure_join(
            join_setup["orders_row"],
            left_query,
            join_setup["line_row"],
            right_query,
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
            config=config,
        )
        ratio = join_setup["lineitem"].num_rows / join_setup["orders"].num_rows
        assert m.left_cardinality == 60_000_000
        assert m.right_cardinality == pytest.approx(60_000_000 * ratio, rel=1e-6)

    def test_row_join_reads_both_full_tables(self, join_setup):
        left_query, right_query = queries(join_setup["lineitem"])
        m = measure_join(
            join_setup["orders_row"],
            left_query,
            join_setup["line_row"],
            right_query,
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        # 1.9 GB of ORDERS + ~4x60M 152-byte LINEITEM rows.
        expected = 1.9e9 + m.right_cardinality * 152
        assert m.bytes_read == pytest.approx(expected, rel=0.05)

    def test_column_join_reads_less_for_narrow_projection(self, join_setup):
        left_query, right_query = queries(join_setup["lineitem"])
        row = measure_join(
            join_setup["orders_row"],
            left_query,
            join_setup["line_row"],
            right_query,
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        col = measure_join(
            join_setup["orders_col"],
            left_query,
            join_setup["line_col"],
            right_query,
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        assert col.bytes_read < row.bytes_read / 5
        assert col.elapsed < row.elapsed

    def test_join_events_include_comparisons(self, join_setup):
        left_query, right_query = queries(join_setup["lineitem"])
        m = measure_join(
            join_setup["orders_col"],
            left_query,
            join_setup["line_col"],
            right_query,
            left_key="O_ORDERKEY",
            right_key="L_ORDERKEY",
        )
        assert m.events.join_comparisons >= m.left_cardinality


class TestJoinAnalysisExperiment:
    def test_runs_and_validates_eq2(self):
        from repro.experiments.figures import join_analysis

        out = join_analysis.run(num_rows=1_200)
        predicted = out.series["eq2_predicted"][0]
        measured = out.series["eq2_measured"][0]
        assert abs(predicted - measured) / measured < 0.10
        assert out.series["speedup"][0] > out.series["speedup"][-1]
