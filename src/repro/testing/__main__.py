"""CLI for the differential fuzzer.

Usage::

    python -m repro.testing --cases 2000        # fuzz a seed range
    python -m repro.testing --seed 1234         # replay one failing case
    python -m repro.testing --seed 1234 --show  # print the case, don't run

Exit status is non-zero when any case fails, so ``make fuzz`` and CI can
gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.testing.genquery import generate_case
from repro.testing.harness import SuiteReport, minimize_case, run_case, run_suite


def _replay(seed: int, show_only: bool, writes: bool = False) -> int:
    case = generate_case(seed, force_writes=writes)
    print(case.describe())
    if show_only:
        return 0
    outcome = run_case(case)
    if outcome.ok:
        print(f"seed {seed}: OK ({outcome.checks} checks)")
        return 0
    for failure in outcome.failures:
        print(f"seed {seed}: {failure}")
    minimized = minimize_case(case)
    if minimized.shrink_steps:
        print("minimized case:")
        print("  " + minimized.describe().replace("\n", "\n  "))
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Differential fuzzer: engine vs pure-Python oracle.",
    )
    parser.add_argument("--cases", type=int, default=2000, help="seeds to fuzz")
    parser.add_argument("--start-seed", type=int, default=0, help="first seed")
    parser.add_argument("--seed", type=int, default=None, help="replay one seed")
    parser.add_argument(
        "--show", action="store_true", help="with --seed: print the case and exit"
    )
    parser.add_argument(
        "--no-metamorphic", action="store_true", help="oracle diffs only"
    )
    parser.add_argument(
        "--writes",
        action="store_true",
        help="force an interleaved insert/delete/merge op sequence onto "
        "every case (hybrid read/write differential battery)",
    )
    parser.add_argument(
        "--failures-json",
        metavar="PATH",
        default=None,
        help="write failing seeds (with repro commands and minimized cases) "
        "as JSON; written even when empty, so CI can always upload it",
    )
    parser.add_argument(
        "--blackbox-dir",
        metavar="DIR",
        default=None,
        help="after the run, dump every flight-recorder black box "
        "(captured e.g. by aborted merges) into DIR as JSON",
    )
    args = parser.parse_args(argv)

    if args.seed is not None:
        return _replay(args.seed, args.show, writes=args.writes)

    started = time.perf_counter()
    last_tick = [0.0]

    def progress(done: int, report: SuiteReport) -> None:
        now = time.perf_counter()
        if now - last_tick[0] >= 5.0 or done == args.cases:
            last_tick[0] = now
            print(
                f"  {done}/{args.cases} cases, {report.checks} checks, "
                f"{len(report.failures)} failure(s), {now - started:.1f}s",
                file=sys.stderr,
            )

    report = run_suite(
        args.cases,
        start_seed=args.start_seed,
        metamorphic=not args.no_metamorphic,
        progress=progress,
        force_writes=args.writes,
    )
    print(report.format())
    if args.failures_json is not None:
        import json
        import pathlib

        path = pathlib.Path(args.failures_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "cases": args.cases,
                    "start_seed": args.start_seed,
                    "ok": report.ok,
                    "failures": [
                        {
                            "seed": seed,
                            "message": message,
                            "minimized": minimized,
                            "repro": "python -m repro.testing --seed "
                            f"{seed}{' --writes' if args.writes else ''}",
                        }
                        for seed, message, minimized in report.failures
                    ],
                },
                indent=2,
                default=str,
            )
            + "\n",
            encoding="utf-8",
        )
    if args.blackbox_dir is not None:
        import pathlib

        from repro.obs import recorder as flight

        directory = pathlib.Path(args.blackbox_dir)
        directory.mkdir(parents=True, exist_ok=True)
        written = flight.RECORDER.write_blackboxes(directory)
        print(f"{len(written)} black box(es) written to {directory}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
