"""Shared execution state: event counters and hardware constants."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cpusim.events import CostEvents
from repro.engine.blocks import DEFAULT_BLOCK_SIZE


@dataclass
class ExecutionContext:
    """Threaded through every operator of one plan execution."""

    calibration: Calibration = DEFAULT_CALIBRATION
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Evaluate SARGable predicates directly on dictionary codes where
    #: possible, decoding only qualifying values (extension; see
    #: :mod:`repro.engine.compressed_exec`).
    compressed_execution: bool = False
    events: CostEvents = field(default_factory=CostEvents)

    def reset_events(self) -> None:
        """Fresh counters (e.g. between repeated executions)."""
        self.events = CostEvents()
