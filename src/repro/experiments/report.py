"""Plain-text rendering of experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """A simple aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class FigureResult:
    """One regenerated figure: a title, column headers, and data rows."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.headers)} headers"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        parts = [self.title, format_table(self.headers, self.rows)]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def column(self, header: str) -> list[object]:
        """All values of one column."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


@dataclass
class ExperimentOutput:
    """Everything one regenerated experiment produces.

    ``tables`` render like the paper's figures; ``series`` holds the raw
    number sequences the shape assertions (tests and benches) check.
    """

    name: str
    tables: list[FigureResult] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        banner = f"=== {self.name} ==="
        return "\n\n".join([banner] + [table.render() for table in self.tables])

    def table(self, title: str) -> FigureResult:
        for candidate in self.tables:
            if candidate.title == title:
                return candidate
        raise KeyError(f"no table {title!r} in {self.name}")
