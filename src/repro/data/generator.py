"""Generated-table container shared by the generators and the loader."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError
from repro.types.schema import TableSchema


@dataclass
class GeneratedTable:
    """A schema plus one in-memory numpy column per attribute.

    This is the hand-off format between the data generator and the bulk
    loader; columns are validated against the schema on construction.
    """

    schema: TableSchema
    columns: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        expected = set(self.schema.attribute_names)
        got = set(self.columns)
        if expected != got:
            raise SchemaError(
                f"columns {sorted(got)} do not match schema attributes "
                f"{sorted(expected)}"
            )
        lengths = {name: len(col) for name, col in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        for attr in self.schema:
            column = np.asarray(self.columns[attr.name])
            attr.attr_type.validate(column)
            self.columns[attr.name] = column.astype(
                attr.attr_type.numpy_dtype(), copy=False
            )

    @property
    def num_rows(self) -> int:
        first = next(iter(self.columns.values()))
        return len(first)

    def column(self, name: str) -> np.ndarray:
        """The column array for one attribute."""
        if name not in self.columns:
            raise SchemaError(f"no column {name!r} in {self.schema.name!r}")
        return self.columns[name]

    def row(self, index: int) -> tuple:
        """One logical tuple, in schema order (testing convenience)."""
        return tuple(self.columns[name][index] for name in self.schema.attribute_names)

    def head(self, count: int = 5) -> list[tuple]:
        """The first ``count`` tuples (testing convenience)."""
        return [self.row(i) for i in range(min(count, self.num_rows))]

    def with_schema(self, schema: TableSchema) -> "GeneratedTable":
        """Rebind the same columns to a different (e.g. compressed) schema."""
        return GeneratedTable(schema=schema, columns=dict(self.columns))
