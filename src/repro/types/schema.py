"""Table schemas: ordered, fixed-length attributes plus compression specs.

A schema is purely logical plus physical-design metadata (the per-column
codec spec chosen by the compression advisor); the storage layer turns it
into row or column files.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import SchemaError
from repro.types.datatypes import AttributeType

if TYPE_CHECKING:  # avoid a circular import at runtime (compression uses types)
    from repro.compression.base import CodecSpec

#: Row tuples are padded to a multiple of this (the paper pads LINEITEM
#: from 150 to 152 bytes).
ROW_ALIGNMENT = 8


@dataclass(frozen=True)
class Attribute:
    """One fixed-length attribute with its storage codec."""

    name: str
    attr_type: AttributeType
    codec_spec: "CodecSpec | None" = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    @property
    def spec(self) -> "CodecSpec":
        """The effective codec spec (identity when none was chosen)."""
        if self.codec_spec is None:
            from repro.compression.identity import IdentityCodec

            return IdentityCodec.spec_for_type(self.attr_type)
        return self.codec_spec

    @property
    def packed_bits(self) -> int:
        """Stored width of one value in bits."""
        return self.spec.bits

    @property
    def width(self) -> int:
        """Uncompressed width of one value in bytes."""
        return self.attr_type.width

    def describe(self) -> str:
        """Figure 5-style one-liner, e.g. ``L_QUANTITY  pack, 6 bits``."""
        return f"{self.name:<18s} {self.spec.describe()}"


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of attributes."""

    name: str
    attributes: tuple[Attribute, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must not be empty")
        if not self.attributes:
            raise SchemaError(f"table {self.name!r} has no attributes")
        names = [attr.name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {self.name!r}: {names}")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute {name!r} in table {self.name!r}")

    def index_of(self, name: str) -> int:
        """Ordinal position of an attribute."""
        for index, attr in enumerate(self.attributes):
            if attr.name == name:
                return index
        raise SchemaError(f"no attribute {name!r} in table {self.name!r}")

    @property
    def tuple_width(self) -> int:
        """Uncompressed logical tuple width in bytes (no padding)."""
        return sum(attr.width for attr in self.attributes)

    @property
    def row_stride(self) -> int:
        """On-disk row width: tuple width padded to :data:`ROW_ALIGNMENT`.

        A row page stores tuples at this stride; the paper's LINEITEM
        occupies 152 bytes on disk for a 150-byte tuple.
        """
        width = self.tuple_width
        remainder = width % ROW_ALIGNMENT
        if remainder == 0:
            return width
        return width + (ROW_ALIGNMENT - remainder)

    @property
    def packed_tuple_bits(self) -> int:
        """Stored tuple width in bits under the per-column codecs."""
        return sum(attr.packed_bits for attr in self.attributes)

    @property
    def packed_tuple_bytes(self) -> float:
        """Stored tuple width in (fractional) bytes under the codecs."""
        return self.packed_tuple_bits / 8.0

    def attribute_offset(self, name: str) -> int:
        """Byte offset of an attribute inside an uncompressed row tuple."""
        offset = 0
        for attr in self.attributes:
            if attr.name == name:
                return offset
            offset += attr.width
        raise SchemaError(f"no attribute {name!r} in table {self.name!r}")

    def with_codecs(self, specs: "dict[str, CodecSpec]") -> "TableSchema":
        """A copy of this schema with codec specs applied by name."""
        unknown = set(specs) - set(self.attribute_names)
        if unknown:
            raise SchemaError(f"specs for unknown attributes: {sorted(unknown)}")
        new_attrs = tuple(
            replace(attr, codec_spec=specs.get(attr.name, attr.codec_spec))
            for attr in self.attributes
        )
        return TableSchema(name=self.name, attributes=new_attrs)

    def project(self, names: list[str] | tuple[str, ...]) -> "TableSchema":
        """Schema containing only ``names``, in the given order."""
        attrs = tuple(self.attribute(name) for name in names)
        return TableSchema(name=f"{self.name}_proj", attributes=attrs)

    def describe(self) -> str:
        """Multi-line Figure 5-style description of the schema."""
        header = (
            f"{self.name} ({self.tuple_width} bytes, "
            f"{len(self.attributes)} attributes, "
            f"packed {self.packed_tuple_bits} bits)"
        )
        lines = [header]
        for index, attr in enumerate(self.attributes, start=1):
            lines.append(f"  {index:>2d} {attr.describe()}")
        return "\n".join(lines)
