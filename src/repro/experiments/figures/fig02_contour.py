"""Figure 2 — the speedup contour (tuple width × cpdb).

Built from the Section 5 speedup formula at 50 % projection and 10 %
selectivity, with scanner costs filled from the engine's calibration,
exactly as the paper fills the formula "from our experimental section".
Row stores should hold an advantage only for lean relations (under
~20 bytes) in CPU-constrained (low-cpdb) configurations.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentOutput, FigureResult
from repro.model.contour import speedup_grid
from repro.model.speedup import SpeedupModel

WIDTHS = (4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 36.0)
CPDBS = (9.0, 18.0, 36.0, 72.0, 144.0)


def run(
    num_rows: int = 0,  # unused; present for the common experiment signature
    config: ExperimentConfig | None = None,
    projection: float = 0.5,
    selectivity: float = 0.10,
) -> ExperimentOutput:
    """Regenerate Figure 2."""
    config = config or ExperimentConfig()
    model = SpeedupModel(calibration=config.calibration)
    grid = speedup_grid(
        model,
        widths=list(WIDTHS),
        cpdbs=list(CPDBS),
        projection=projection,
        selectivity=selectivity,
    )
    table = FigureResult(
        title=(
            f"Average column-over-row speedup, {projection:.0%} projection, "
            f"{selectivity:.0%} selectivity"
        ),
        headers=["cpdb"] + [f"w={int(w)}" for w in grid.widths],
    )
    series: dict[str, list[float]] = {"widths": list(grid.widths)}
    for i in range(len(grid.cpdbs) - 1, -1, -1):
        cpdb = float(grid.cpdbs[i])
        values = [round(float(v), 2) for v in grid.values[i]]
        table.add_row(int(cpdb), *values)
        series[f"cpdb_{int(cpdb)}"] = [float(v) for v in grid.values[i]]
    return ExperimentOutput(
        name="Figure 2: speedup contour", tables=[table], series=series
    )
