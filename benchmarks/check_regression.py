"""Regression sentinel for the workload-throughput benchmark.

Compares a freshly produced ``bench_workload_throughput.json`` artifact
against one or more prior baseline artifacts and fails (exit 1) when
any benchmark arm regressed beyond a noise-aware threshold:

* **latency** (p50/p95/p99/makespan, higher is worse) regresses when
  the current value exceeds ``baseline * (1 + threshold)`` AND the
  absolute delta clears ``--noise-floor-ms`` — the second clause stops
  a 0.4 ms -> 0.6 ms jitter on a fast arm from tripping a 25% gate;
* **qps** (lower is worse) regresses when the current value drops
  below ``baseline / (1 + threshold)``.

Arms are matched by ``(clients, share_scans)``, so re-ordered or added
arms never misalign the comparison; arms present on only one side are
reported and skipped.  When several ``--baseline`` globs match, the
newest artifact by its provenance ``timestamp_utc`` wins.  Baselines
whose provenance (calibration fingerprint, python, numpy) differs from
the current artifact produce warnings — cross-machine comparisons are
allowed but flagged, since the modeled cost terms shift with
calibration.

Usage::

    python benchmarks/check_regression.py \
        --current results/bench_workload_throughput.json \
        --baseline 'baselines/*.json'

    python benchmarks/check_regression.py \
        --current results/bench_workload_throughput.json --self-test

``--self-test`` needs no baseline: it checks the comparator itself by
verifying the current artifact passes against an identical copy and is
flagged against a synthetically slowed copy.  CI runs exactly that
(there is no committed cross-run baseline yet), so the sentinel's
decision logic is exercised on every push.

Exit codes: 0 ok, 1 regression (or self-test failure), 2 usage errors
(missing artifact, ``--require-baseline`` with no baseline found).
"""

from __future__ import annotations

import argparse
import copy
import glob
import json
import os
import pathlib
import sys

#: Per-arm metrics compared: (json key, short name, higher-is-worse).
METRICS = (
    ("latency_p50_seconds", "p50", True),
    ("latency_p95_seconds", "p95", True),
    ("latency_p99_seconds", "p99", True),
    ("makespan_seconds", "makespan", True),
    ("qps", "qps", False),
)

#: Provenance keys that should match for an apples-to-apples comparison.
PROVENANCE_KEYS = ("calibration_fingerprint", "python", "numpy")

DEFAULT_THRESHOLD = 0.25
DEFAULT_NOISE_FLOOR_MS = 2.0


def load_artifact(path: str | pathlib.Path) -> dict:
    """One benchmark artifact, validated to have comparable arms."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if not isinstance(data.get("arms"), list) or not data["arms"]:
        raise ValueError(f"{path}: no 'arms' array — not a benchmark artifact")
    return data


def index_arms(artifact: dict) -> dict[tuple[int, bool], dict]:
    """Arms keyed by ``(clients, share_scans)``."""
    return {
        (int(arm["clients"]), bool(arm["share_scans"])): arm
        for arm in artifact["arms"]
    }


def pick_baseline(patterns: list[str]) -> tuple[str, dict] | None:
    """The newest artifact matching any glob, by provenance timestamp.

    Files that fail to parse are skipped with a note on stderr rather
    than aborting — a half-written artifact from a crashed run should
    not wedge the sentinel.
    """
    candidates: list[tuple[str, str, dict]] = []
    for pattern in patterns:
        for path in sorted(glob.glob(pattern)):
            try:
                artifact = load_artifact(path)
            except (ValueError, OSError, json.JSONDecodeError) as exc:
                print(f"note: skipping baseline {path}: {exc}", file=sys.stderr)
                continue
            stamp = str(artifact.get("provenance", {}).get("timestamp_utc", ""))
            candidates.append((stamp, path, artifact))
    if not candidates:
        return None
    stamp, path, artifact = max(candidates, key=lambda item: item[0])
    return path, artifact


def compare(
    current: dict,
    baseline: dict,
    threshold: float,
    noise_floor_s: float,
) -> dict:
    """Compare two artifacts arm by arm.

    Returns ``{"regressions": [...], "checked": [...], "warnings":
    [...]}`` where each regression/checked row carries the arm key,
    metric name, baseline and current values, and the relative delta.
    """
    cur_arms = index_arms(current)
    base_arms = index_arms(baseline)
    regressions: list[dict] = []
    checked: list[dict] = []
    warnings: list[str] = []

    cur_prov = current.get("provenance", {})
    base_prov = baseline.get("provenance", {})
    for key in PROVENANCE_KEYS:
        if cur_prov.get(key) != base_prov.get(key):
            warnings.append(
                f"provenance mismatch on {key}: baseline "
                f"{base_prov.get(key)!r} vs current {cur_prov.get(key)!r}"
            )

    for arm_key in sorted(set(cur_arms) - set(base_arms)):
        warnings.append(f"arm {arm_key} has no baseline — skipped")
    for arm_key in sorted(set(base_arms) - set(cur_arms)):
        warnings.append(f"baseline arm {arm_key} missing from current run")

    for arm_key in sorted(set(cur_arms) & set(base_arms)):
        cur_arm, base_arm = cur_arms[arm_key], base_arms[arm_key]
        for json_key, name, higher_is_worse in METRICS:
            base = float(base_arm[json_key])
            cur = float(cur_arm[json_key])
            delta = (cur / base - 1.0) if base else 0.0
            row = {
                "clients": arm_key[0],
                "share_scans": arm_key[1],
                "metric": name,
                "baseline": base,
                "current": cur,
                "delta": delta,
            }
            if higher_is_worse:
                regressed = (
                    cur > base * (1.0 + threshold)
                    and (cur - base) > noise_floor_s
                )
            else:
                regressed = cur < base / (1.0 + threshold)
            row["regressed"] = regressed
            checked.append(row)
            if regressed:
                regressions.append(row)

    return {"regressions": regressions, "checked": checked, "warnings": warnings}


def _describe(row: dict) -> str:
    share = "on" if row["share_scans"] else "off"
    unit = " qps" if row["metric"] == "qps" else " s"
    return (
        f"clients={row['clients']} share={share} {row['metric']}: "
        f"{row['baseline']:.4f} -> {row['current']:.4f}{unit} "
        f"({row['delta']:+.1%})"
    )


def report(outcome: dict, baseline_path: str, as_json: bool) -> None:
    if as_json:
        print(json.dumps({"baseline": baseline_path, **outcome}, indent=2))
        return
    for warning in outcome["warnings"]:
        print(f"warning: {warning}")
    for row in outcome["regressions"]:
        print(f"REGRESSION {_describe(row)}")
    ok = len(outcome["checked"]) - len(outcome["regressions"])
    print(
        f"regression check vs {baseline_path}: {ok}/{len(outcome['checked'])} "
        f"metrics within threshold"
        + ("" if not outcome["regressions"] else " — FAIL")
    )


def _slowed_copy(artifact: dict, factor: float) -> dict:
    """A deep copy with every arm slowed by ``factor`` (for --self-test)."""
    slowed = copy.deepcopy(artifact)
    for arm in slowed["arms"]:
        for json_key, _name, higher_is_worse in METRICS:
            if higher_is_worse:
                arm[json_key] = float(arm[json_key]) * factor
            else:
                arm[json_key] = float(arm[json_key]) / factor
    return slowed


def self_test(current: dict, threshold: float, noise_floor_s: float) -> int:
    """Prove the comparator flags slowdowns and passes identical runs."""
    identical = compare(current, current, threshold, noise_floor_s)
    if identical["regressions"]:
        print("self-test FAIL: identical artifact flagged as regressed")
        for row in identical["regressions"]:
            print(f"  {_describe(row)}")
        return 1

    # Slow every metric well past both the relative threshold and any
    # plausible noise floor so the gate must fire on every arm.
    factor = 1.0 + 2.0 * threshold + 0.1
    slowed = compare(_slowed_copy(current, factor), current, threshold, noise_floor_s)
    arms = len(index_arms(current))
    flagged = {
        (row["clients"], row["share_scans"], row["metric"])
        for row in slowed["regressions"]
    }
    missed = [
        (clients, share, name)
        for (clients, share) in index_arms(current)
        for _key, name, _worse in METRICS
        if (clients, share, name) not in flagged
    ]
    # Sub-noise-floor latencies legitimately escape the absolute clause;
    # qps has no noise floor, so every arm must flag at least that.
    missed = [
        item
        for item in missed
        if item[2] == "qps"
        or float(index_arms(current)[item[:2]][
            {name: key for key, name, _ in METRICS}[item[2]]
        ]) * (factor - 1.0) > noise_floor_s
    ]
    if missed:
        print(f"self-test FAIL: slowed copy not flagged on {missed}")
        return 1
    print(
        f"self-test ok: identical artifact passes, x{factor:.2f} slowdown "
        f"flagged on all {arms} arms"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/check_regression.py",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--current",
        required=True,
        help="artifact from the run under test (bench_workload_throughput.json)",
    )
    parser.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="GLOB",
        help="baseline artifact glob; repeatable, newest timestamp wins",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(
            os.environ.get("REPRO_REGRESSION_THRESHOLD", DEFAULT_THRESHOLD)
        ),
        help="relative regression threshold (default %(default)s, "
        "env REPRO_REGRESSION_THRESHOLD)",
    )
    parser.add_argument(
        "--noise-floor-ms",
        type=float,
        default=DEFAULT_NOISE_FLOOR_MS,
        help="absolute latency delta below which a relative miss is noise "
        "(default %(default)s ms)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--require-baseline",
        action="store_true",
        help="exit 2 when no baseline matches (default: pass with a note)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the comparator against the current artifact itself",
    )
    args = parser.parse_args(argv)
    noise_floor_s = args.noise_floor_ms / 1e3

    try:
        current = load_artifact(args.current)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load current artifact: {exc}", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(current, args.threshold, noise_floor_s)

    picked = pick_baseline(args.baseline) if args.baseline else None
    if picked is None:
        message = "no baseline artifact found"
        if args.require_baseline:
            print(f"error: {message}", file=sys.stderr)
            return 2
        print(f"note: {message} — nothing to compare, passing")
        return 0

    baseline_path, baseline = picked
    outcome = compare(current, baseline, args.threshold, noise_floor_s)
    report(outcome, baseline_path, args.json)
    return 1 if outcome["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
