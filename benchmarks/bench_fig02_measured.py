"""Figure 2 measured — simulation agrees with the Section 5 formula."""

import numpy as np
from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import fig02_measured


def bench_figure2_measured(benchmark):
    out = run_once(benchmark, lambda: fig02_measured.run(num_rows=BENCH_ROWS))
    publish(out, "figure_02_measured.txt")

    measured = np.asarray(out.series["measured"])
    predicted = np.asarray(out.series["predicted"])
    rel_err = np.abs(predicted - measured) / measured
    # The formula tracks the simulator across the whole grid.  The
    # largest deviations come from column-file seeks, which the model
    # deliberately ignores ("we do not model disk seeks").
    assert rel_err.max() < 0.15
    assert ((measured > 1) == (predicted > 1)).all()
