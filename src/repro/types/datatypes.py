"""Fixed-length attribute types.

The paper uses fixed-length attributes throughout: four-byte integers
(all decimals are stored as scaled integers) and fixed-width text fields.
A type knows its on-disk width, the numpy dtype used to hold a column of
values in memory, and how to serialize a column slice into the dense page
byte layout of Section 2.2.1.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SchemaError


class AttributeType(abc.ABC):
    """Common interface for the fixed-length attribute types."""

    #: on-disk width of one value, in bytes (uncompressed)
    width: int

    @abc.abstractmethod
    def numpy_dtype(self) -> np.dtype:
        """Dtype used for an in-memory column of this type."""

    @abc.abstractmethod
    def encode_values(self, values: np.ndarray) -> bytes:
        """Serialize a column slice into the dense on-page representation."""

    @abc.abstractmethod
    def decode_values(self, data: bytes, count: int) -> np.ndarray:
        """Inverse of :meth:`encode_values` for ``count`` values."""

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def validate(self, values: np.ndarray) -> None:
        """Raise :class:`SchemaError` if ``values`` cannot be stored."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.width == getattr(other, "width", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.width))


class IntType(AttributeType):
    """A four-byte signed integer (the paper's only numeric type).

    Values are held in memory as ``int64`` so that compression schemes can
    work with deltas and offsets without overflow, but each value occupies
    four bytes on disk.
    """

    width = 4
    _MIN = -(2**31)
    _MAX = 2**31 - 1

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    def encode_values(self, values: np.ndarray) -> bytes:
        self.validate(values)
        return np.ascontiguousarray(values, dtype="<i4").tobytes()

    def decode_values(self, data: bytes, count: int) -> np.ndarray:
        expected = count * self.width
        if len(data) < expected:
            raise SchemaError(
                f"int column slice has {len(data)} bytes, need {expected}"
            )
        raw = np.frombuffer(data[:expected], dtype="<i4")
        return raw.astype(np.int64)

    def validate(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.size == 0:
            return
        if not np.issubdtype(values.dtype, np.integer):
            raise SchemaError(f"expected integer values, got dtype {values.dtype}")
        lo = int(values.min())
        hi = int(values.max())
        if lo < self._MIN or hi > self._MAX:
            raise SchemaError(
                f"value out of 32-bit range: min={lo} max={hi}"
            )

    def __repr__(self) -> str:
        return "IntType()"


class FixedTextType(AttributeType):
    """A fixed-width text field, padded with NUL bytes on disk.

    The paper converts the one variable-length LINEITEM field
    (``L_COMMENT``) into fixed text to keep every attribute fixed-length.
    """

    def __init__(self, width: int):
        if width <= 0:
            raise SchemaError(f"text width must be positive, got {width}")
        self.width = int(width)

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(f"S{self.width}")

    def encode_values(self, values: np.ndarray) -> bytes:
        self.validate(values)
        return np.ascontiguousarray(values, dtype=f"S{self.width}").tobytes()

    def decode_values(self, data: bytes, count: int) -> np.ndarray:
        expected = count * self.width
        if len(data) < expected:
            raise SchemaError(
                f"text column slice has {len(data)} bytes, need {expected}"
            )
        return np.frombuffer(data[:expected], dtype=f"S{self.width}").copy()

    def validate(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.size == 0:
            return
        if values.dtype.kind != "S":
            raise SchemaError(f"expected bytes values, got dtype {values.dtype}")
        if values.dtype.itemsize > self.width:
            longest = max((len(v) for v in values.tolist()), default=0)
            if longest > self.width:
                raise SchemaError(
                    f"text value of length {longest} exceeds field width {self.width}"
                )

    def __repr__(self) -> str:
        return f"FixedTextType({self.width})"
