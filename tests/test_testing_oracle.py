"""Deterministic tests for the oracle, generator, and harness plumbing.

These pin the pieces the fuzzer itself depends on, plus the engine bug
the oracle caught on first contact: sort-based aggregation with a
multi-attribute group-by key only sorted on the first key, splitting
groups into spurious runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import GeneratedTable
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan
from repro.engine.plan import aggregate_plan
from repro.engine.predicate import ComparisonOp, Predicate
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.testing.genquery import generate_case
from repro.testing.harness import minimize_case, run_case
from repro.testing.oracle import (
    complement_predicate,
    oracle_aggregate,
    oracle_merge_join,
    oracle_scan,
    oracle_topn,
)
from repro.types.datatypes import FixedTextType, IntType
from repro.types.schema import Attribute, TableSchema


def _table(name, columns, text=()):
    attrs = tuple(
        Attribute(attr, FixedTextType(8) if attr in text else IntType())
        for attr in columns
    )
    return GeneratedTable(
        schema=TableSchema(name, attributes=attrs),
        columns={k: np.asarray(v) for k, v in columns.items()},
    )


@pytest.fixture
def simple():
    return _table(
        "T",
        {
            "a": [1, 1, 1, 2, 2, 3],
            "b": [0, 1, 0, 0, 1, 0],
            "v": [10, 20, 30, 40, 50, 60],
        },
    )


def test_oracle_scan_positions_and_rows(simple):
    query = ScanQuery("T", select=("a", "v"), predicates=(Predicate("v", ComparisonOp.GT, 20),))
    result = oracle_scan(simple, query)
    assert result.positions == [2, 3, 4, 5]
    assert result.rows == [(1, 30), (2, 40), (2, 50), (3, 60)]


def test_oracle_scan_predicate_on_unselected_attr(simple):
    query = ScanQuery("T", select=("v",), predicates=(Predicate("a", ComparisonOp.EQ, 2),))
    result = oracle_scan(simple, query)
    assert result.rows == [(40,), (50,)]


def test_complement_predicate_partitions(simple):
    for op in ComparisonOp:
        predicate = Predicate("v", op, 30)
        keep = oracle_scan(simple, ScanQuery("T", ("v",), (predicate,)))
        drop = oracle_scan(
            simple, ScanQuery("T", ("v",), (complement_predicate(predicate),))
        )
        assert sorted(keep.positions + drop.positions) == list(range(6))
        assert not set(keep.positions) & set(drop.positions)


def test_oracle_aggregate_grouped_sum(simple):
    spec = AggregateSpec(group_by=("a", "b"), function=AggregateFunction.SUM, argument="v")
    result = oracle_aggregate(simple, ScanQuery("T", ("a", "b", "v")), spec)
    assert result.names == ["a", "b", "sum_v"]
    assert result.rows == [(1, 0, 40), (1, 1, 20), (2, 0, 40), (2, 1, 50), (3, 0, 60)]


def test_oracle_aggregate_global_avg_is_float(simple):
    spec = AggregateSpec(group_by=(), function=AggregateFunction.AVG, argument="v")
    result = oracle_aggregate(simple, ScanQuery("T", ("v",)), spec)
    assert result.rows == [(35.0,)]
    assert isinstance(result.rows[0][0], float)


def test_oracle_merge_join_right_order_and_names():
    dim = _table("DIM", {"k": [1, 2, 4], "name": [100, 200, 400]})
    fct = _table("FCT", {"fk": [1, 1, 2, 3, 4], "v": [5, 6, 7, 8, 9]})
    result = oracle_merge_join(
        dim, ScanQuery("DIM", ("k", "name")), fct, ScanQuery("FCT", ("fk", "v")),
        "k", "fk",
    )
    assert result.names == ["k", "name", "fk", "v"]
    # fk=3 has no dimension match and drops out; order follows the fact side.
    assert result.rows == [(1, 100, 1, 5), (1, 100, 1, 6), (2, 200, 2, 7), (4, 400, 4, 9)]
    assert result.positions == [0, 1, 2, 4]


def test_oracle_topn_tie_semantics(simple):
    scanned = oracle_scan(simple, ScanQuery("T", ("a", "v")))
    asc = oracle_topn(scanned, "a", 2)
    # Ascending keeps ties in input order.
    assert asc.rows == [(1, 10), (1, 20)]
    desc = oracle_topn(scanned, "a", 3, descending=True)
    # Descending reverses a stable ascending sort: ties in reverse input order.
    assert desc.rows == [(3, 60), (2, 50), (2, 40)]


def test_generate_case_is_deterministic():
    first, second = generate_case(42), generate_case(42)
    assert first.describe() == second.describe()
    table = first.tables[first.query.table]
    other = second.tables[second.query.table]
    for name in table.columns:
        np.testing.assert_array_equal(table.columns[name], other.columns[name])


def test_run_case_clean_on_first_seeds():
    for seed in range(12):  # two full featured-codec cycles
        outcome = run_case(generate_case(seed))
        assert outcome.ok, f"seed {seed}: {outcome.failures}"


def test_minimizer_shrinks_a_failing_case():
    case = generate_case(7)
    # An "always fails" checker: the minimizer should then shrink the
    # case to (near-)nothing without ever invalidating it.
    minimized = minimize_case(case, still_fails=lambda c: True)
    assert minimized.shrink_steps
    table = minimized.tables[minimized.query.table]
    assert table.num_rows <= 1
    assert not minimized.query.predicates


def test_sort_aggregate_multikey_regression(simple):
    """Multi-key sort-based aggregation must not split groups.

    Found by the differential oracle: ``aggregate_plan`` used to sort on
    ``group_by[0]`` only, so ``SortAggregate`` (which splits runs on all
    keys) emitted duplicate groups whenever later keys interleaved.
    """
    spec = AggregateSpec(group_by=("a", "b"), function=AggregateFunction.SUM, argument="v")
    query = ScanQuery("T", ("a", "b", "v"))
    expected = oracle_aggregate(simple, query, spec)
    for layout in (Layout.ROW, Layout.COLUMN):
        table = load_table(simple, layout, page_size=512)
        plan = aggregate_plan(ExecutionContext(), table, query, spec, sort_based=True)
        result = execute_plan(plan)
        got = sorted(
            zip(
                result.column("a").tolist(),
                result.column("b").tolist(),
                result.column("sum_v").tolist(),
            )
        )
        assert got == expected.rows
