"""Property-based codec tests: every scheme round-trips any data it
accepts, at any page split, and selective decode equals full decode."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CodecKind
from repro.compression.registry import build_codec_for_values
from repro.types.datatypes import FixedTextType, IntType

int_columns = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    min_size=1,
    max_size=300,
)

nonneg_columns = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=300
)

text_columns = st.lists(
    st.binary(min_size=0, max_size=8).filter(lambda b: b"\x00" not in b),
    min_size=1,
    max_size=200,
)


def roundtrip(kind, attr_type, values):
    codec = build_codec_for_values(kind, attr_type, values, page_capacity_hint=len(values))
    payload, state = codec.encode_page(values)
    decoded = codec.decode_page(payload, len(values), state)
    np.testing.assert_array_equal(decoded, values)
    return codec, payload, state


@settings(max_examples=60, deadline=None)
@given(nonneg_columns)
def test_bitpack_roundtrip(raw):
    roundtrip(CodecKind.PACK, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_for_roundtrip_any_ints(raw):
    roundtrip(CodecKind.FOR, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_for_delta_roundtrip_any_ints(raw):
    roundtrip(CodecKind.FOR_DELTA, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_dictionary_roundtrip_ints(raw):
    roundtrip(CodecKind.DICT, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(text_columns)
def test_dictionary_roundtrip_text(raw):
    values = np.array(raw, dtype="S8")
    roundtrip(CodecKind.DICT, FixedTextType(8), values)


@settings(max_examples=60, deadline=None)
@given(text_columns)
def test_textpack_roundtrip(raw):
    values = np.array(raw, dtype="S8")
    roundtrip(CodecKind.PACK, FixedTextType(8), values)


@settings(max_examples=40, deadline=None)
@given(
    int_columns,
    st.data(),
)
def test_selective_decode_matches_full_decode(raw, data):
    values = np.array(raw, dtype=np.int64)
    kind = data.draw(
        st.sampled_from(
            [CodecKind.NONE, CodecKind.DICT, CodecKind.FOR, CodecKind.FOR_DELTA]
        )
    )
    codec = build_codec_for_values(kind, IntType(), values, page_capacity_hint=len(values))
    payload, state = codec.encode_page(values)
    positions = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(values) - 1),
            min_size=0,
            max_size=len(values),
            unique=True,
        ).map(sorted)
    )
    positions = np.array(positions, dtype=np.int64)
    selected, decoded = codec.decode_positions(payload, len(values), state, positions)
    np.testing.assert_array_equal(selected, values[positions])
    if codec.decodes_whole_page:
        assert decoded == len(values)
    else:
        assert decoded == len(positions)


# --- RLE (variable capacity, int-only) ---------------------------------------

runs_columns = st.lists(
    st.tuples(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.integers(min_value=1, max_value=50),
    ),
    min_size=1,
    max_size=40,
).map(lambda pairs: [v for value, length in pairs for v in [value] * length])


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_rle_roundtrip_any_ints(raw):
    roundtrip(CodecKind.RLE, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(runs_columns)
def test_rle_roundtrip_runs_heavy(raw):
    roundtrip(CodecKind.RLE, IntType(), np.array(raw, dtype=np.int64))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=-(2**31), max_value=2**31 - 1), st.integers(1, 500))
def test_rle_single_run(value, length):
    values = np.full(length, value, dtype=np.int64)
    codec, payload, _state = roundtrip(CodecKind.RLE, IntType(), values)
    # A single run stores one (value, run-length) pair regardless of
    # length; each stream is packed separately and byte-rounded.
    assert len(payload) == 4 + (codec.spec.bits + 7) // 8 + (codec.spec.run_bits + 7) // 8


def test_rle_empty_page_roundtrips():
    # Spec sized from real data, then an empty page encoded under it
    # (the loader never writes one, but decode must not crash).
    sized_from = np.array([7, 7, 7, 3], dtype=np.int64)
    codec = build_codec_for_values(CodecKind.RLE, IntType(), sized_from)
    payload, state = codec.encode_page(np.zeros(0, dtype=np.int64))
    decoded = codec.decode_page(payload, 0, state)
    assert decoded.size == 0


@settings(max_examples=40, deadline=None)
@given(runs_columns, st.integers(min_value=16, max_value=256))
def test_rle_encode_prefix_consumes_whole_runs(raw, payload_bytes):
    values = np.array(raw, dtype=np.int64)
    codec = build_codec_for_values(CodecKind.RLE, IntType(), values)
    try:
        payload, state, consumed = codec.encode_prefix(values, payload_bytes)
    except Exception:
        # Payload too small for even one pair: a legitimate refusal.
        assert codec.pair_bits > payload_bytes * 8 - 32
        return
    assert 1 <= consumed <= len(values)
    decoded = codec.decode_page(payload, consumed, state)
    np.testing.assert_array_equal(decoded, values[:consumed])
    # Page boundaries fall on run boundaries (or a cap split).
    if consumed < len(values):
        assert values[consumed] != values[consumed - 1] or consumed % (1 << 16) == 0


# --- textpack adversarial cases -----------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_textpack_roundtrip_random_widths(data):
    width = data.draw(st.integers(min_value=1, max_value=12))
    raw = data.draw(
        st.lists(
            st.binary(min_size=0, max_size=width).filter(lambda b: b"\x00" not in b),
            min_size=1,
            max_size=100,
        )
    )
    values = np.array(raw, dtype=f"S{width}")
    codec, payload, _state = roundtrip(CodecKind.PACK, FixedTextType(width), values)
    longest = max((len(v) for v in raw), default=0)
    assert len(payload) == max(1, longest) * len(values)


def test_textpack_max_width_values():
    # Values at the full field width: packing must not drop a byte.
    values = np.array([b"abcdefgh", b"zzzzzzzz", b"a"], dtype="S8")
    codec, payload, _state = roundtrip(CodecKind.PACK, FixedTextType(8), values)
    assert codec.packed_width == 8
    assert len(payload) == 8 * 3


def test_textpack_all_empty_strings():
    values = np.array([b"", b"", b""], dtype="S8")
    codec, _payload, _state = roundtrip(CodecKind.PACK, FixedTextType(8), values)
    assert codec.packed_width == 1  # floor of one stored byte per value


def test_textpack_empty_page_roundtrips():
    sized_from = np.array([b"abc", b"de"], dtype="S8")
    codec = build_codec_for_values(CodecKind.PACK, FixedTextType(8), sized_from)
    payload, state = codec.encode_page(np.zeros(0, dtype="S8"))
    decoded = codec.decode_page(payload, 0, state)
    assert decoded.size == 0


@settings(max_examples=40, deadline=None)
@given(nonneg_columns)
def test_compression_never_negative_sized(raw):
    values = np.array(raw, dtype=np.int64)
    for kind in (CodecKind.PACK, CodecKind.FOR, CodecKind.FOR_DELTA):
        codec = build_codec_for_values(kind, IntType(), values, page_capacity_hint=len(values))
        payload, _state = codec.encode_page(values)
        expected_bits = codec.bits_per_value * len(values)
        assert len(payload) == (expected_bits + 7) // 8


# --- delete-vector bitmap codec -------------------------------------------------

from repro.errors import ChecksumError, StorageError  # noqa: E402
from repro.storage.delete_vector import DeleteVector  # noqa: E402

dv_sizes = st.integers(min_value=0, max_value=2_000)


@st.composite
def dv_vectors(draw):
    size = draw(dv_sizes)
    positions = (
        draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                max_size=min(size, 200),
            )
        )
        if size
        else []
    )
    vector = DeleteVector(size)
    for position in positions:
        vector.set(position)
    return vector, positions


@settings(max_examples=80, deadline=None)
@given(dv_vectors(), st.integers(min_value=16, max_value=4096))
def test_delete_vector_roundtrip_any_page_size(built, page_bytes):
    vector, _positions = built
    blob = vector.to_bytes(page_bytes=page_bytes)
    back = DeleteVector.from_bytes(blob)
    assert back == vector
    assert back.size == vector.size
    assert back.count() == vector.count()


@settings(max_examples=80, deadline=None)
@given(dv_vectors())
def test_delete_vector_popcount_matches_oracle(built):
    vector, positions = built
    oracle = set(positions)
    assert vector.count() == len(oracle)
    assert vector.deleted_positions().tolist() == sorted(oracle)
    mask = vector.mask()
    assert mask.sum() == len(oracle)
    for position in list(oracle)[:20]:
        assert vector.test(position)
    # Cumulative prefix counts agree with a running oracle sum.
    cumulative = vector.cumulative()
    assert cumulative[0] == 0
    assert cumulative[-1] == len(oracle)
    running = 0
    for position in sorted(oracle):
        assert cumulative[position] == running
        running += 1
        assert cumulative[position + 1] == running


@settings(max_examples=60, deadline=None)
@given(dv_sizes, st.data())
def test_delete_vector_set_clear_idempotent(size, data):
    vector = DeleteVector(size)
    if size == 0:
        assert vector.count() == 0 and vector.is_empty
        return
    position = data.draw(st.integers(min_value=0, max_value=size - 1))
    assert vector.set(position) is True
    assert vector.set(position) is False  # re-set is a no-op
    assert vector.count() == 1
    assert vector.clear(position) is True
    assert vector.clear(position) is False  # re-clear is a no-op
    assert vector.count() == 0 and vector.is_empty


def test_delete_vector_empty_full_boundary_pages():
    # Empty vector: header-only blob round-trips.
    empty = DeleteVector(0)
    assert DeleteVector.from_bytes(empty.to_bytes()) == empty
    # Fully-populated vector at byte and page boundaries.
    for size in (1, 7, 8, 9, 1024 * 8, 1024 * 8 + 1):
        vector = DeleteVector(size)
        vector.set_many(range(size))
        assert vector.count() == size
        back = DeleteVector.from_bytes(vector.to_bytes(page_bytes=1024))
        assert back == vector and back.count() == size


def test_delete_vector_corruption_detected():
    vector = DeleteVector(100)
    vector.set_many([0, 50, 99])
    blob = bytearray(vector.to_bytes(page_bytes=16))
    # Flip one payload bit: some page CRC must fail.
    blob[len(blob) // 2] ^= 0x01
    try:
        DeleteVector.from_bytes(bytes(blob))
    except (ChecksumError, StorageError):
        pass
    else:  # pragma: no cover - the flip must be caught
        raise AssertionError("corrupted delete vector decoded cleanly")


def test_delete_vector_tail_bits_must_be_zero():
    import struct
    import zlib

    import pytest

    vector = DeleteVector(9)  # two bytes, 7 padding bits in the tail
    vector.set(8)
    assert DeleteVector.from_bytes(vector.to_bytes()) == vector

    # Forge a blob whose header claims size 9 but whose (CRC-valid)
    # payload carries bit 15 set — a bit past the logical size.  Both
    # sizes need two payload bytes and one page, so only the header's
    # size field and CRC change; the decoder's tail-bit validation is
    # the sole guard.
    grown = DeleteVector(16)
    grown.set_many([8, 15])
    blob = bytearray(grown.to_bytes())
    header_struct = struct.Struct("<4sIQII")
    magic, version, _size, page_bytes, num_pages = header_struct.unpack_from(
        bytes(blob)
    )
    forged_head = header_struct.pack(magic, version, 9, page_bytes, num_pages)
    blob[: header_struct.size] = forged_head
    struct.pack_into("<I", blob, header_struct.size, zlib.crc32(forged_head))
    with pytest.raises(StorageError, match="past its logical size"):
        DeleteVector.from_bytes(bytes(blob))
