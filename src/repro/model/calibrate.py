"""Fill model parameters from measured runs (the paper's approach).

Figure 2 is "constructed from the speedup formula, filling up actual
CPU rates from our experimental section": run a query on the engine,
then turn its event counts into the per-tuple ``I`` values of Table 2.
"""

from __future__ import annotations

from repro.cpusim.costmodel import CpuModel
from repro.cpusim.events import CostEvents
from repro.errors import CalibrationError
from repro.model.params import ScannerParams


def scanner_params_from_measurement(
    events: CostEvents,
    model: CpuModel,
    num_tuples: int,
) -> ScannerParams:
    """Per-tuple scanner costs extracted from one measured scan.

    ``i_user`` comes from the counted user instructions, ``i_system``
    from the kernel-side cycles, and memory bytes per tuple from the
    counted L2 line traffic — exactly the quantities the paper reads
    off its performance counters.
    """
    if num_tuples <= 0:
        raise CalibrationError(f"num_tuples must be positive: {num_tuples}")
    c = model.calibration
    i_user = model.user_instructions(events) / num_tuples
    i_system = model.sys_seconds(events) * c.clock_hz / num_tuples
    mem_bytes = (
        (events.mem_seq_lines + events.mem_rand_lines)
        * c.l2_line_bytes
        / num_tuples
    )
    return ScannerParams(
        i_user=i_user, i_system=i_system, mem_bytes_per_tuple=mem_bytes
    )
