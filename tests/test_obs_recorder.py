"""Flight recorder: ring semantics, black boxes, workload integration."""

from __future__ import annotations

import json

import pytest

from repro.data.tpch import generate_orders
from repro.database import Database
from repro.engine.context import ExecutionContext
from repro.engine.executor import run_scan
from repro.engine.query import ScanQuery
from repro.errors import QueryTimeout
from repro.obs import SpanTracer
from repro.obs import recorder as flight
from repro.obs.recorder import FlightRecorder
from repro.storage.layout import Layout
from repro.storage.loader import load_table


@pytest.fixture(autouse=True)
def clean_recorder():
    """Each test starts with an enabled, empty global ring."""
    flight.enable()
    flight.RECORDER.clear()
    yield
    flight.enable()
    flight.RECORDER.clear()


class TestRing:
    def test_eviction_is_oldest_first(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(6):
            recorder.record("t.event", index=index)
        assert len(recorder) == 4
        assert recorder.evicted == 2
        assert [event.seq for event in recorder.events()] == [2, 3, 4, 5]
        assert [event.detail["index"] for event in recorder.events()] == [
            2, 3, 4, 5,
        ]

    def test_sequence_survives_clear(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("t.a")
        recorder.record("t.b")
        recorder.clear()
        assert len(recorder) == 0
        recorder.record("t.c")
        assert recorder.events()[0].seq == 2

    def test_kind_filter_matches_exact_and_layer_prefix(self):
        recorder = FlightRecorder()
        recorder.record("share.attach")
        recorder.record("share.wrap")
        recorder.record("scheduler.admit")
        assert [e.kind for e in recorder.events(kind="share")] == [
            "share.attach",
            "share.wrap",
        ]
        assert [e.kind for e in recorder.events(kind="share.wrap")] == [
            "share.wrap"
        ]
        # "sched" is not a layer prefix of "scheduler.admit".
        assert recorder.events(kind="sched") == []

    def test_query_slicing(self):
        recorder = FlightRecorder()
        recorder.record("t.a", "q1")
        recorder.record("t.b", "q2")
        recorder.record("t.c", "q1")
        recorder.record("t.d", None)
        assert [e.kind for e in recorder.events(query="q1")] == ["t.a", "t.c"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_event_dict_is_json_ready(self):
        recorder = FlightRecorder()
        recorder.record("t.a", "q", n=3)
        payload = recorder.events()[0].as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["kind"] == "t.a"
        assert payload["detail"] == {"n": 3}


class TestEnableDisable:
    def test_disabled_record_is_dropped(self):
        flight.disable()
        assert not flight.enabled()
        flight.record("t.dropped")
        flight.enable()
        assert flight.RECORDER.events(kind="t.dropped") == []
        flight.record("t.kept")
        assert len(flight.RECORDER.events(kind="t.kept")) == 1


class TestBlackbox:
    def test_box_freezes_the_failing_querys_slice(self):
        recorder = FlightRecorder()
        recorder.record("scheduler.admit", "victim")
        recorder.record("scheduler.admit", "peer")
        recorder.record("governance.timeout", "victim", overdue_s=0.1)
        box = recorder.dump_blackbox(
            "victim",
            error=QueryTimeout("too slow"),
            governance={"label": "victim"},
            replay="python -m repro.testing.chaos --seed 7",
        )
        assert box["query"] == "victim"
        assert box["error"] == {"type": "QueryTimeout", "message": "too slow"}
        assert [e["kind"] for e in box["events"]] == [
            "scheduler.admit",
            "governance.timeout",
        ]
        assert all(e["query"] == "victim" for e in box["events"])
        assert box["replay"].endswith("--seed 7")
        for key in ("git_sha", "timestamp_utc", "calibration_fingerprint"):
            assert box["provenance"][key]
        assert "spans" not in box  # untraced query: no span tree

    def test_box_includes_span_tree_when_traced(self):
        data = generate_orders(300, seed=3)
        table = load_table(data, Layout.COLUMN)
        context = ExecutionContext(tracer=SpanTracer())
        run_scan(table, ScanQuery("ORDERS", select=("O_ORDERKEY",)), context)
        box = FlightRecorder().dump_blackbox("q", tracer=context.tracer)
        assert box["spans"]["spans"], "traced failure should carry its profile"

    def test_boxes_are_bounded_and_write_as_json_files(self, tmp_path):
        recorder = FlightRecorder(max_blackboxes=2)
        for index in range(3):
            recorder.record("t.fail", f"q{index}")
            recorder.dump_blackbox(f"q{index}")
        assert [box["seq"] for box in recorder.blackboxes] == [1, 2]
        paths = recorder.write_blackboxes(tmp_path)
        assert [path.name for path in paths] == [
            "blackbox-0001.json",
            "blackbox-0002.json",
        ]
        reloaded = json.loads(paths[0].read_text())
        assert reloaded["query"] == "q1"


class TestWorkloadIntegration:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        database.create_table(generate_orders(3_000, seed=19))
        return database

    def _requests(self, timeout=None):
        return [
            {"table": "ORDERS", "select": ("O_ORDERKEY", "O_TOTALPRICE")},
            {
                "table": "ORDERS",
                "select": ("O_ORDERKEY", "O_TOTALPRICE"),
                "timeout": timeout,
            },
            {"table": "ORDERS", "select": ("O_ORDERKEY", "O_TOTALPRICE")},
        ]

    def test_each_failure_dumps_exactly_one_blackbox(self, db):
        handles = db.run_workload(self._requests(timeout=1e-9))
        failed = [h for h in handles if h.error is not None]
        assert len(failed) == 1
        assert isinstance(failed[0].error, QueryTimeout)
        boxes = db.dump_blackbox()
        assert len(boxes) == 1
        box = boxes[0]
        assert box["query"] == failed[0].governance.label
        assert box["error"]["type"] == "QueryTimeout"
        assert box["events"], "the box must carry the query's event slice"
        assert all(e["query"] == box["query"] for e in box["events"])

    def test_healthy_workload_dumps_nothing_but_records_lifecycle(self, db):
        handles = db.run_workload(self._requests())
        assert all(h.error is None for h in handles)
        assert db.dump_blackbox() == []
        recorder = db.flight_recorder()
        assert recorder is flight.RECORDER
        submits = recorder.events(kind="scheduler.submit")
        assert len(submits) == len(handles)
        # Unique per-submission labels keep event slices disjoint.
        labels = [h.governance.label for h in handles]
        assert len(set(labels)) == len(labels)

    def test_blackboxes_written_to_directory(self, db, tmp_path):
        db.run_workload(self._requests(timeout=1e-9))
        paths = db.dump_blackbox(tmp_path)
        assert len(paths) == 1
        assert json.loads(paths[0].read_text())["error"]["type"] == "QueryTimeout"

    def test_disabled_recorder_skips_capture(self, db):
        flight.disable()
        handles = db.run_workload(self._requests(timeout=1e-9))
        assert any(h.error is not None for h in handles)
        flight.enable()
        assert db.dump_blackbox() == []
        assert len(flight.RECORDER) == 0
