"""Null suppression for fixed-width text.

Figure 5 compresses the 69-byte ``L_COMMENT`` field with *pack, 28 bytes*:
the field is padded with NULs on disk, and packing stores only as many
bytes as the longest actual value in the domain — the text analogue of
bit packing's "as many bits as the maximum value requires".
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, CodecKind, CodecSpec, PageCodecState
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType, FixedTextType


class TextPackCodec(Codec):
    """Stores fixed text truncated to the domain's maximum actual length."""

    def __init__(self, spec: CodecSpec, attr_type: AttributeType):
        if spec.kind is not CodecKind.PACK:
            raise CompressionError(f"TextPackCodec got spec kind {spec.kind}")
        if not isinstance(attr_type, FixedTextType):
            raise CompressionError("TextPackCodec applies to fixed text only")
        if spec.bits % 8 != 0:
            raise CompressionError(
                f"text packing width must be whole bytes, got {spec.bits} bits"
            )
        super().__init__(spec, attr_type)
        self._packed_width = spec.bits // 8
        if self._packed_width > attr_type.width:
            raise CompressionError(
                f"packed width {self._packed_width} exceeds field width "
                f"{attr_type.width}"
            )

    @property
    def packed_width(self) -> int:
        """Stored bytes per value."""
        return self._packed_width

    def encode_page(self, values: np.ndarray) -> tuple[bytes, PageCodecState]:
        values = np.asarray(values, dtype=f"S{self.attr_type.width}")
        longest = max((len(v) for v in values.tolist()), default=0)
        if longest > self._packed_width:
            raise CompressionError(
                f"text value of length {longest} exceeds packed width "
                f"{self._packed_width}"
            )
        packed = np.ascontiguousarray(values, dtype=f"S{self._packed_width}")
        return packed.tobytes(), PageCodecState()

    def decode_page(self, payload: bytes, count: int, state: PageCodecState) -> np.ndarray:
        expected = count * self._packed_width
        if len(payload) < expected:
            raise CompressionError(
                f"text payload of {len(payload)} bytes too short for "
                f"{count} x {self._packed_width}"
            )
        packed = np.frombuffer(payload[:expected], dtype=f"S{self._packed_width}")
        return packed.astype(f"S{self.attr_type.width}")

    @staticmethod
    def spec_for_values(values: np.ndarray) -> CodecSpec:
        """Packed width = longest actual value in the domain."""
        values = np.asarray(values)
        if values.size == 0:
            raise CompressionError("cannot size text packing from an empty column")
        longest = max((len(v) for v in values.tolist()), default=1)
        return CodecSpec(kind=CodecKind.PACK, bits=max(1, longest) * 8)
