"""Converts work events into the paper's CPU-time breakdown."""

from __future__ import annotations

from repro.cpusim.breakdown import CpuBreakdown
from repro.cpusim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cpusim.events import CostEvents


class CpuModel:
    """The Section 4.1 measurement methodology, run in reverse.

    The paper measures hardware counters and derives a breakdown; we
    count the work directly and apply the same arithmetic:

    * ``usr-uop`` is instructions over the 3-wide issue width;
    * sequential memory traffic is *bandwidth* time (1 byte/cycle) that
      overlaps with computation — only the excess shows as ``usr-L2`` —
      while each random line stalls the full 380 cycles;
    * ``usr-L1`` is the upper-bound fill time for every line that moved
      into L1;
    * ``sys`` charges per byte read, per I/O request, and per stream
      switch.
    """

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION):
        self.calibration = calibration

    # --- instruction counting ---------------------------------------------

    def user_instructions(self, events: CostEvents) -> float:
        """Total user-mode instructions implied by the event counts."""
        c = self.calibration
        inst = 0.0
        inst += events.tuples_examined * c.inst_tuple_iter_row
        inst += events.values_examined * c.inst_value_iter_col
        inst += events.predicate_evals * c.inst_predicate
        inst += events.predicate_eval_bytes * c.inst_predicate_byte
        inst += events.positions_processed * c.inst_position
        inst += events.values_copied * c.inst_copy_value
        inst += events.bytes_copied * c.inst_copy_byte
        inst += events.pages_touched * c.inst_page_overhead
        inst += events.blocks_produced * c.inst_block_overhead
        inst += events.agg_updates * c.inst_agg_update
        inst += events.group_lookups * c.inst_group_lookup
        inst += events.join_comparisons * c.inst_join_comparison
        inst += events.sort_comparisons * c.inst_sort_comparison
        for kind, count in events.values_decoded.items():
            inst += count * c.decode_cost(kind)
        return inst

    # --- time components ----------------------------------------------------

    def sys_seconds(self, events: CostEvents) -> float:
        """Kernel-mode time for the I/O work performed."""
        c = self.calibration
        cycles = (
            events.bytes_read * c.sys_cycles_per_byte
            + events.io_requests * c.sys_cycles_per_request
            + events.stream_switches * c.sys_cycles_per_stream_switch
        )
        return cycles / c.aggregate_clock_hz

    def breakdown(self, events: CostEvents) -> CpuBreakdown:
        """Full CPU-time breakdown for one query's events."""
        c = self.calibration
        clock = c.aggregate_clock_hz
        instructions = self.user_instructions(events)
        usr_uop = instructions / c.uops_per_cycle / clock
        compute = instructions * c.cycles_per_instruction / clock
        usr_rest = max(0.0, compute - usr_uop)

        seq_mem = events.mem_seq_lines * c.seq_line_cycles / clock
        rand_mem = events.mem_rand_lines * c.random_miss_cycles / clock
        # Sequential prefetch overlaps with computation; only the excess
        # is a visible stall.  Random misses never overlap.
        usr_l2 = max(0.0, seq_mem - compute) + rand_mem

        usr_l1 = events.l1_lines * c.l1_fill_cycles / clock

        return CpuBreakdown(
            sys=self.sys_seconds(events),
            usr_uop=usr_uop,
            usr_l2=usr_l2,
            usr_l1=usr_l1,
            usr_rest=usr_rest,
        )

    def user_seconds(self, events: CostEvents) -> float:
        """Total user-mode CPU time."""
        return self.breakdown(events).user

    def cpu_seconds(self, events: CostEvents) -> float:
        """Total CPU time (sys + user)."""
        return self.breakdown(events).total
