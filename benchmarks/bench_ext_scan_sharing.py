"""Extension bench — §2.1.1 scan sharing."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import scan_sharing


def bench_scan_sharing(benchmark):
    out = run_once(benchmark, lambda: scan_sharing.run(num_rows=BENCH_ROWS))
    publish(out, "ext_scan_sharing.txt")

    speedups = out.series["speedup"]
    queries = out.series["queries"]
    # Sharing approaches an N-fold makespan improvement.
    for count, speedup in zip(queries, speedups):
        if count == 1:
            assert abs(speedup - 1.0) < 0.01
        else:
            assert speedup > 0.85 * count
    # A late arrival still finishes sooner shared than independent.
    assert (
        out.series["staggered_shared_late"][0]
        < out.series["staggered_independent_late"][0]
    )
