"""Compression advisor (the Figure 1 component).

Given a column's values, picks the light-weight scheme with the smallest
fixed packed width, optionally weighing decode cost: FOR-delta saves bits
over FOR on value-local data but forces whole-page decodes (Figure 9), so
a CPU-constrained design may prefer FOR even when it is wider.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import CodecKind, CodecSpec
from repro.compression.bitpack import BitPackCodec
from repro.compression.dictionary import DictionaryCodec
from repro.compression.frame import ForCodec, ForDeltaCodec
from repro.compression.identity import IdentityCodec
from repro.compression.textpack import TextPackCodec
from repro.errors import CompressionError
from repro.types.datatypes import AttributeType, FixedTextType, IntType

#: Dictionaries larger than this are not worth the lookup table.
DEFAULT_MAX_DICTIONARY = 4096


@dataclass(frozen=True)
class AdvisorChoice:
    """One candidate scheme with its packed width."""

    spec: CodecSpec
    bits: int

    @property
    def kind(self) -> CodecKind:
        return self.spec.kind


def candidate_specs(
    attr_type: AttributeType,
    values: np.ndarray,
    page_capacity_hint: int = 4096,
    max_dictionary: int = DEFAULT_MAX_DICTIONARY,
) -> list[AdvisorChoice]:
    """Enumerate every scheme applicable to this column's data."""
    choices = [
        AdvisorChoice(
            spec=IdentityCodec.spec_for_type(attr_type),
            bits=attr_type.width * 8,
        )
    ]
    distinct = np.unique(np.asarray(values)) if np.asarray(values).size else None
    if distinct is not None and distinct.size <= max_dictionary:
        spec = DictionaryCodec.spec_for_values(values)
        choices.append(AdvisorChoice(spec=spec, bits=spec.bits))
    if isinstance(attr_type, FixedTextType) and np.asarray(values).size:
        spec = TextPackCodec.spec_for_values(values)
        choices.append(AdvisorChoice(spec=spec, bits=spec.bits))
    if isinstance(attr_type, IntType) and np.asarray(values).size:
        ints = np.asarray(values, dtype=np.int64)
        if int(ints.min()) >= 0:
            spec = BitPackCodec.spec_for_values(ints)
            choices.append(AdvisorChoice(spec=spec, bits=spec.bits))
        for_spec = ForCodec.spec_for_values(ints, page_capacity_hint)
        choices.append(AdvisorChoice(spec=for_spec, bits=for_spec.bits))
        delta_spec = ForDeltaCodec.spec_for_values(ints, page_capacity_hint)
        choices.append(AdvisorChoice(spec=delta_spec, bits=delta_spec.bits))
    return choices


def choose_spec(
    attr_type: AttributeType,
    values: np.ndarray,
    page_capacity_hint: int = 4096,
    prefer_cheap_decode: bool = False,
    max_dictionary: int = DEFAULT_MAX_DICTIONARY,
) -> CodecSpec:
    """Pick the narrowest applicable scheme for one column.

    With ``prefer_cheap_decode`` set, FOR-delta is charged a one-bit-width
    penalty per value so that plain FOR (or packing) wins ties and near
    ties — the CPU-bound tradeoff of Section 4.4.
    """
    choices = candidate_specs(
        attr_type, values, page_capacity_hint, max_dictionary=max_dictionary
    )
    if not choices:
        raise CompressionError("no applicable compression scheme")

    def cost(choice: AdvisorChoice) -> tuple:
        bits = choice.bits
        if prefer_cheap_decode and choice.kind is CodecKind.FOR_DELTA:
            bits += 8
        # Ties break toward simpler schemes (enum definition order).
        order = list(CodecKind).index(choice.kind)
        return (bits, order)

    best = min(choices, key=cost)
    if not best.spec.is_compressed:
        return best.spec
    uncompressed_bits = attr_type.width * 8
    if best.bits >= uncompressed_bits:
        return IdentityCodec.spec_for_type(attr_type)
    return best.spec


class CompressionAdvisor:
    """Chooses a per-column compression scheme for a whole table.

    Parameters mirror :func:`choose_spec`; ``advise`` maps attribute names
    to specs given a dict of column arrays.
    """

    def __init__(
        self,
        page_capacity_hint: int = 4096,
        prefer_cheap_decode: bool = False,
        max_dictionary: int = DEFAULT_MAX_DICTIONARY,
    ):
        self.page_capacity_hint = page_capacity_hint
        self.prefer_cheap_decode = prefer_cheap_decode
        self.max_dictionary = max_dictionary

    def advise(
        self,
        attr_types: dict[str, AttributeType],
        columns: dict[str, np.ndarray],
    ) -> dict[str, CodecSpec]:
        """Return a spec per attribute name."""
        missing = set(attr_types) - set(columns)
        if missing:
            raise CompressionError(f"no data for attributes: {sorted(missing)}")
        return {
            name: choose_spec(
                attr_type,
                columns[name],
                page_capacity_hint=self.page_capacity_hint,
                prefer_cheap_decode=self.prefer_cheap_decode,
                max_dictionary=self.max_dictionary,
            )
            for name, attr_type in attr_types.items()
        }
