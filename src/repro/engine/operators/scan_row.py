"""Row-table scanner.

Iterates over the pages of the single row file and, per page, over the
tuples: applies the predicates, projects qualifying tuples onto the
selected attributes, and emits blocks (Section 2.2.2).  The row store
reads — and therefore streams through the memory hierarchy — every byte
of every page regardless of the projection, which is why its cost
curves are flat in projectivity.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.compression.base import CodecKind
from repro.engine.blocks import Block, split_into_blocks
from repro.engine.context import ExecutionContext
from repro.engine.operators.base import Operator
from repro.engine.predicate import Predicate
from repro.errors import PlanError
from repro.storage.table import RowTable

_WHOLE_PAGE_KINDS = (CodecKind.FOR_DELTA,)


def normalize_row_range(
    row_range: tuple[int, int] | None, num_rows: int
) -> tuple[int, int]:
    """Clamp a half-open ``[lo, hi)`` row window to the table.

    ``None`` means the whole table.  The window is what horizontal
    partitioning (``repro.storage.partition``) hands each parallel
    worker; positions emitted under a window stay *global* Record IDs.
    """
    if row_range is None:
        return (0, num_rows)
    lo, hi = row_range
    if lo < 0 or hi < lo:
        raise PlanError(f"invalid row range: [{lo}, {hi})")
    return (min(lo, num_rows), min(hi, num_rows))


class RowScanner(Operator):
    """Scan a :class:`RowTable`, applying predicates and projecting."""

    def __init__(
        self,
        context: ExecutionContext,
        table: RowTable,
        select: tuple[str, ...],
        predicates: tuple[Predicate, ...] = (),
        row_range: tuple[int, int] | None = None,
    ):
        super().__init__(context)
        self.table = table
        for name in select:
            table.schema.attribute(name)
        for predicate in predicates:
            table.schema.attribute(predicate.attr)
        if not select:
            raise PlanError("row scanner needs a non-empty select list")
        self.select = tuple(select)
        self.predicates = tuple(predicates)
        self.row_range = normalize_row_range(row_range, table.num_rows)
        self._page_index = 0
        self._ready: deque[Block] = deque()
        self._row_base = 0
        self._emitted_any = False
        self._schema_compressed = any(
            attr.spec.is_compressed for attr in table.schema
        )

    def describe(self) -> str:
        detail = f"{self.table.schema.name}: {', '.join(self.select)}"
        if self.predicates:
            detail += f" | {len(self.predicates)} predicate(s)"
        lo, hi = self.row_range
        if (lo, hi) != (0, self.table.num_rows):
            detail += f" | rows [{lo}, {hi})"
        return detail

    def _open(self) -> None:
        self._page_index = 0
        self._ready.clear()
        self._row_base = 0
        self._emitted_any = False

    def _next(self) -> Block | None:
        lo, hi = self.row_range
        while not self._ready:
            if self._page_index >= self.table.file.num_pages or self._row_base >= hi:
                if not self._emitted_any:
                    # Emit one empty block so the output schema survives
                    # a scan with no qualifying tuples.
                    self._emitted_any = True
                    return self._empty_block()
                return None
            self._governance_check()
            index = self._page_index
            self._page_index += 1
            span = self.table.row_span_of_page(index)
            if self._row_base + span <= lo:
                # Page entirely before the row window: skip without I/O.
                self._row_base += span
                continue
            self._process_page(index)
        self._emitted_any = True
        return self._ready.popleft()

    def _empty_block(self) -> Block:
        columns = {
            name: np.zeros(
                0, dtype=self.table.schema.attribute(name).attr_type.numpy_dtype()
            )
            for name in self.select
        }
        return Block(columns=columns, positions=np.zeros(0, dtype=np.int64))

    def _process_page(self, index: int) -> None:
        events = self.events
        calibration = self.context.calibration
        decoded = self._salvage_decode(
            lambda: self.table.page_codec.decode_columns(
                self.table.file.read_page(index)
            ),
            self.table.file.name,
            index,
            self.table.row_span_of_page(index),
        )
        if decoded is None:
            # Salvage: skip the corrupt page but advance the global row
            # position by its nominal span so later pages' Record IDs —
            # and any position-joined column files — stay aligned.
            self._row_base += self.table.row_span_of_page(index)
            return
        _page_id, count, columns = decoded

        # Restrict to the scanner's row window: the page is decoded (and
        # charged) whole, but tuples outside [lo, hi) are never examined.
        lo, hi = self.row_range
        start = max(0, lo - self._row_base)
        stop = max(start, min(count, hi - self._row_base))
        in_range = stop - start

        events.pages_touched += 1
        events.tuples_examined += in_range
        # The row store touches the whole page front to back: purely
        # sequential memory traffic.
        events.mem_seq_lines += self.table.page_size // calibration.l2_line_bytes
        events.l1_lines += self.table.page_size // calibration.l1_line_bytes

        if in_range == count:
            mask = np.ones(count, dtype=bool)
        else:
            mask = np.zeros(count, dtype=bool)
            mask[start:stop] = True
        decoded_attrs: set[str] = set()
        for index, predicate in enumerate(self.predicates):
            candidates = int(np.count_nonzero(mask)) if index else in_range
            events.predicate_evals += candidates
            events.predicate_eval_bytes += (
                candidates * self.table.schema.attribute(predicate.attr).width
            )
            self._count_decodes(predicate.attr, count, count, decoded_attrs)
            mask &= predicate.evaluate(columns[predicate.attr])

        qualified = int(np.count_nonzero(mask))
        if qualified:
            for name in self.select:
                self._count_decodes(name, count, qualified, decoded_attrs)
            selected_width = sum(
                self.table.schema.attribute(name).width for name in self.select
            )
            events.values_copied += qualified * len(self.select)
            events.bytes_copied += qualified * selected_width

            positions = self._row_base + np.flatnonzero(mask)
            block = Block(
                columns={name: columns[name][mask] for name in self.select},
                positions=positions,
            )
            self._ready.extend(split_into_blocks(block, self.context.block_size))
        self._row_base += count

    def _count_decodes(
        self,
        attr_name: str,
        page_count: int,
        accessed: int,
        decoded_attrs: set[str],
    ) -> None:
        """Charge decompression work for touching one attribute."""
        if not self._schema_compressed or attr_name in decoded_attrs:
            return
        spec = self.table.schema.attribute(attr_name).spec
        if not spec.is_compressed:
            return
        decoded_attrs.add(attr_name)
        if spec.kind in _WHOLE_PAGE_KINDS:
            self.events.count_decode(spec.kind, page_count)
        else:
            self.events.count_decode(spec.kind, accessed)
