"""Extension bench — §6 NSM vs PAX vs DSM."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import pax_comparison


def bench_pax_comparison(benchmark):
    out = run_once(benchmark, lambda: pax_comparison.run(num_rows=BENCH_ROWS))
    publish(out, "ext_pax_comparison.txt")

    # PAX I/O matches the row store no matter the projection...
    pax = out.series["pax_elapsed"]
    row = out.series["row_elapsed"]
    assert max(pax) - min(pax) < 0.02 * max(pax)
    assert all(abs(p - r) / r < 0.10 for p, r in zip(pax, row))
    # ...but its memory traffic scales with the projection like a
    # column store's.
    assert out.series["pax_mem"][0] < 0.2 * out.series["row_mem"][0]
    assert out.series["pax_mem"][-1] > 5 * out.series["pax_mem"][0]
    # The column store still wins on I/O for narrow projections.
    assert out.series["col_elapsed"][0] < 0.2 * pax[0]
