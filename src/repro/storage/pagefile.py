"""A file of adjacent pages.

Pages are stored back to back; the storage layer holds the real bytes
in memory (the I/O *timing* is the job of :mod:`repro.iosim`, which only
needs sizes and access patterns, never the bytes themselves).
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE


class PagedFile:
    """An append-only sequence of fixed-size pages."""

    def __init__(self, name: str, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise StorageError(f"page size must be positive: {page_size}")
        self.name = name
        self.page_size = page_size
        self._data = bytearray()

    @property
    def num_pages(self) -> int:
        return len(self._data) // self.page_size

    @property
    def size_bytes(self) -> int:
        """Total file size in bytes."""
        return len(self._data)

    def append_page(self, page: bytes) -> int:
        """Append one page; returns its page index."""
        if len(page) != self.page_size:
            raise StorageError(
                f"page of {len(page)} bytes does not match page size "
                f"{self.page_size} for file {self.name!r}"
            )
        index = self.num_pages
        self._data.extend(page)
        return index

    def read_page(self, index: int) -> bytes:
        """Read one page by index."""
        if not 0 <= index < self.num_pages:
            raise StorageError(
                f"page {index} out of range [0, {self.num_pages}) in {self.name!r}"
            )
        start = index * self.page_size
        return bytes(self._data[start : start + self.page_size])

    def iter_pages(self, start: int = 0):
        """Yield pages in file order, from ``start``."""
        for index in range(start, self.num_pages):
            yield self.read_page(index)

    def __len__(self) -> int:
        return self.num_pages

    def __repr__(self) -> str:
        return (
            f"PagedFile({self.name!r}, pages={self.num_pages}, "
            f"bytes={self.size_bytes})"
        )
