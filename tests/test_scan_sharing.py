"""Property tests for shared-scan attach/detach (circular scans).

A consumer may attach to a :class:`~repro.engine.sharing.
SharedScanStream` at *any* segment — it rides to the end of the pass,
wraps around, and detaches after one full circle.  These tests drive
the attach point over every segment (and seeded predicate variations)
on RLE-, dictionary-, and FOR-coded column pages, plus the degenerate
geometries (empty table, single-page table) and salvage-mode pages,
asserting the reassembled output is byte-identical to a cold serial
scan of the same query.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.compression.base import CodecKind
from repro.compression.registry import build_codec_for_values
from repro.data.generator import GeneratedTable
from repro.data.tpch import generate_orders, orders_schema
from repro.engine.context import ExecutionContext
from repro.engine.executor import run_scan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.engine.sharing import ScanShareManager, SharedScanConsumer, SharedScanStream
from repro.errors import ChecksumError, PlanError
from repro.storage.layout import Layout
from repro.storage.loader import load_table
from repro.storage.table import ColumnTable
from repro.testing.oracle import oracle_scan

ROWS = 700


def _spec(kind: CodecKind, attr_type, values: np.ndarray):
    return build_codec_for_values(kind, attr_type, values, page_capacity_hint=256).spec


def _coded_orders(seed: int) -> GeneratedTable:
    """ORDERS data with RLE, dictionary, and FOR codecs assigned."""
    data = generate_orders(ROWS, seed=seed)
    schema = data.schema
    # Sort one column's values into runs so RLE has something to encode
    # (the codec requires nothing; the runs make the pages interesting).
    columns = dict(data.columns)
    columns["O_SHIPPRIORITY"] = np.sort(columns["O_SHIPPRIORITY"])
    specs = {
        "O_SHIPPRIORITY": _spec(
            CodecKind.RLE,
            schema.attribute("O_SHIPPRIORITY").attr_type,
            columns["O_SHIPPRIORITY"],
        ),
        "O_ORDERSTATUS": _spec(
            CodecKind.DICT,
            schema.attribute("O_ORDERSTATUS").attr_type,
            columns["O_ORDERSTATUS"],
        ),
        "O_TOTALPRICE": _spec(
            CodecKind.FOR,
            schema.attribute("O_TOTALPRICE").attr_type,
            columns["O_TOTALPRICE"],
        ),
    }
    return GeneratedTable(schema=schema.with_codecs(specs), columns=columns)


def _empty_orders() -> GeneratedTable:
    schema = orders_schema()
    columns = {
        attr.name: np.zeros(0, dtype=attr.attr_type.numpy_dtype())
        for attr in schema
    }
    return GeneratedTable(schema=schema, columns=columns)


def assert_identical(got, want) -> None:
    assert np.array_equal(got.positions, want.positions)
    assert got.positions.dtype == want.positions.dtype
    assert list(got.columns) == list(want.columns)
    for name in want.columns:
        assert np.array_equal(got.columns[name], want.columns[name]), name
        assert got.columns[name].dtype == want.columns[name].dtype, name


def _drain_consumer(consumer: SharedScanConsumer):
    from repro.engine.blocks import concat_blocks
    from repro.engine.executor import QueryResult

    blocks = consumer.drain()
    merged = concat_blocks(blocks)
    return QueryResult(
        columns=merged.columns,
        positions=merged.positions,
        events=consumer.context.events,
        corruption=consumer.context.corruption,
    )


def _advance_stream(stream: SharedScanStream, query: ScanQuery, steps: int) -> None:
    """Move the stream's cursor by pumping a throwaway rider."""
    if steps == 0:
        return
    pacer = SharedScanConsumer(ExecutionContext(), stream, query)
    pacer.open()
    for _ in range(steps):
        if not pacer.advance():
            break
    stream.detach(pacer)


QUERY = ScanQuery(
    "ORDERS", select=("O_ORDERKEY", "O_SHIPPRIORITY", "O_ORDERSTATUS", "O_TOTALPRICE")
)


class TestCircularAttach:
    """Every attach point must reassemble to the cold-scan answer."""

    @pytest.mark.parametrize("layout", [Layout.ROW, Layout.PAX, Layout.COLUMN])
    def test_every_attach_page_matches_cold_scan(self, layout):
        data = _coded_orders(seed=11)
        table = load_table(data, layout)
        want = run_scan(load_table(data, layout), QUERY)
        probe = SharedScanStream(table, QUERY.scan_attributes(), True)
        for attach_at in range(probe.num_segments + 1):
            stream = SharedScanStream(table, QUERY.scan_attributes(), True)
            _advance_stream(stream, QUERY, attach_at)
            rider = SharedScanConsumer(ExecutionContext(), stream, QUERY)
            assert rider.attach_cursor == attach_at % max(stream.num_segments, 1)
            got = _drain_consumer(rider)
            assert_identical(got, want)

    def test_seeded_predicates_and_attach_points(self):
        """Seed-replayable sweep: random predicates x random attach."""
        data = _coded_orders(seed=23)
        table = load_table(data, Layout.COLUMN)
        for seed in range(25):
            rng = random.Random(f"scan-share-{seed}")
            attr = rng.choice(["O_SHIPPRIORITY", "O_TOTALPRICE", "O_ORDERKEY"])
            selectivity = rng.choice([0.05, 0.3, 0.7, 1.0])
            predicate = predicate_for_selectivity(
                attr, data.column(attr), selectivity
            )
            query = ScanQuery(
                "ORDERS",
                select=("O_ORDERKEY", "O_ORDERSTATUS", attr)
                if attr != "O_ORDERKEY"
                else ("O_ORDERKEY", "O_ORDERSTATUS"),
                predicates=(predicate,),
            )
            stream = SharedScanStream(table, query.scan_attributes(), True)
            _advance_stream(
                stream, query, rng.randrange(stream.num_segments + 1)
            )
            rider = SharedScanConsumer(ExecutionContext(), stream, query)
            got = _drain_consumer(rider)
            want = run_scan(load_table(data, Layout.COLUMN), query)
            assert_identical(got, want)
            oracle = oracle_scan(data, query)
            assert got.positions.tolist() == list(oracle.positions), f"seed {seed}"

    def test_two_riders_attached_at_different_points(self):
        """A mid-flight joiner and the original rider both get it all."""
        data = _coded_orders(seed=31)
        table = load_table(data, Layout.COLUMN)
        want = run_scan(load_table(data, Layout.COLUMN), QUERY)
        stream = SharedScanStream(table, QUERY.scan_attributes(), True)
        first = SharedScanConsumer(ExecutionContext(), stream, QUERY)
        first.open()
        # Ride the first consumer partway, then attach the second.
        for _ in range(stream.num_segments // 2):
            first.advance()
        second = SharedScanConsumer(ExecutionContext(), stream, QUERY)
        assert second.attach_cursor == stream.cursor
        got_second = _drain_consumer(second)
        # First finishes off deliveries it already received plus the rest.
        blocks = []
        while True:
            block = first.next()
            if block is None:
                break
            blocks.append(block)
        first.close()
        from repro.engine.blocks import concat_blocks

        merged = concat_blocks(blocks)
        assert_identical(merged, want.as_block())
        assert_identical(got_second, want)
        # Both detached after their single pass.
        assert stream.consumers == ()


class TestDegenerateGeometry:
    def test_empty_table(self):
        data = _empty_orders()
        for layout in (Layout.ROW, Layout.PAX, Layout.COLUMN):
            table = load_table(data, layout)
            stream = SharedScanStream(table, QUERY.scan_attributes(), True)
            assert stream.num_segments == 0
            rider = SharedScanConsumer(ExecutionContext(), stream, QUERY)
            got = _drain_consumer(rider)
            want = run_scan(load_table(data, layout), QUERY)
            assert_identical(got, want)
            assert got.num_tuples == 0
            assert list(got.columns) == list(QUERY.select)

    def test_single_page_table(self):
        data = generate_orders(40, seed=3)
        for layout in (Layout.ROW, Layout.PAX, Layout.COLUMN):
            table = load_table(data, layout)
            stream = SharedScanStream(table, QUERY.scan_attributes(), True)
            rider = SharedScanConsumer(ExecutionContext(), stream, QUERY)
            got = _drain_consumer(rider)
            assert_identical(got, run_scan(load_table(data, layout), QUERY))

    def test_missing_attribute_is_a_plan_error(self):
        data = generate_orders(40, seed=3)
        table = load_table(data, Layout.COLUMN)
        stream = SharedScanStream(table, ("O_ORDERKEY",), True)
        with pytest.raises(PlanError):
            SharedScanConsumer(ExecutionContext(), stream, QUERY)


def _corrupt_page(paged_file, page_index: int) -> None:
    offset = page_index * paged_file.page_size + 97
    paged_file._data[offset] ^= 0xFF


class TestSalvagePages:
    """Corrupt pages drop the same rows as a serial salvage scan."""

    @pytest.mark.parametrize("layout", [Layout.ROW, Layout.PAX, Layout.COLUMN])
    def test_salvage_matches_serial_salvage(self, layout):
        data = _coded_orders(seed=47)
        table = load_table(data, layout)
        if isinstance(table, ColumnTable):
            victim = table.column_file("O_ORDERKEY").file
        else:
            victim = table.file
        _corrupt_page(victim, victim.num_pages // 2)
        want = run_scan(table, QUERY, salvage=True)
        assert not want.is_complete
        context = ExecutionContext(strict_integrity=False)
        stream = SharedScanStream(table, QUERY.scan_attributes(), False)
        rider = SharedScanConsumer(context, stream, QUERY)
        got = _drain_consumer(rider)
        assert_identical(got, want)
        assert not got.is_complete
        assert got.corruption.faults[0].page == victim.num_pages // 2

    def test_salvage_attach_points(self):
        """Wrap-around over a corrupt page from every attach offset."""
        data = _coded_orders(seed=53)
        table = load_table(data, Layout.COLUMN)
        victim = table.column_file("O_SHIPPRIORITY").file
        _corrupt_page(victim, 0)
        want = run_scan(table, QUERY, salvage=True)
        probe = SharedScanStream(table, QUERY.scan_attributes(), False)
        for attach_at in range(0, probe.num_segments + 1, 2):
            stream = SharedScanStream(table, QUERY.scan_attributes(), False)
            _advance_stream(stream, QUERY, attach_at)
            rider = SharedScanConsumer(
                ExecutionContext(strict_integrity=False), stream, QUERY
            )
            got = _drain_consumer(rider)
            assert_identical(got, want)

    def test_strict_stream_fails_every_rider_typed(self):
        data = _coded_orders(seed=59)
        table = load_table(data, Layout.ROW)
        _corrupt_page(table.file, 0)
        stream = SharedScanStream(table, QUERY.scan_attributes(), True)
        first = SharedScanConsumer(ExecutionContext(), stream, QUERY)
        second = SharedScanConsumer(ExecutionContext(), stream, QUERY)
        first.open()
        with pytest.raises(ChecksumError):
            while first.advance():
                pass
        assert stream.failed is not None
        second.open()
        with pytest.raises(ChecksumError):
            second.next()


class TestShareManager:
    def test_hit_then_fresh_stream_after_pass(self):
        data = _coded_orders(seed=61)
        table = load_table(data, Layout.COLUMN)
        manager = ScanShareManager()
        context_a = ExecutionContext()
        a = manager.acquire(table, QUERY, context_a)
        b = manager.acquire(table, QUERY, ExecutionContext())
        assert a.share is b.share
        assert manager.hits == 1 and manager.misses == 1
        got_a = _drain_consumer(a)
        got_b = _drain_consumer(b)
        want = run_scan(load_table(data, Layout.COLUMN), QUERY)
        assert_identical(got_a, want)
        assert_identical(got_b, want)
        # Pass complete, all riders detached: next acquire starts fresh.
        c = manager.acquire(table, QUERY, ExecutionContext())
        assert c.share is not a.share
        assert manager.misses == 2
        # The I/O ledger keeps both streams' pages, each counted once.
        assert manager.io_pages() >= a.share.io_events.pages_touched

    def test_different_column_sets_do_not_share(self):
        data = _coded_orders(seed=67)
        table = load_table(data, Layout.COLUMN)
        manager = ScanShareManager()
        narrow = ScanQuery("ORDERS", select=("O_ORDERKEY",))
        a = manager.acquire(table, QUERY, ExecutionContext())
        b = manager.acquire(table, narrow, ExecutionContext())
        assert a.share is not b.share
        assert manager.hits == 0

    def test_io_accounted_once_for_two_riders(self):
        data = _coded_orders(seed=71)
        table = load_table(data, Layout.COLUMN)
        manager = ScanShareManager()
        a = manager.acquire(table, QUERY, ExecutionContext())
        b = manager.acquire(table, QUERY, ExecutionContext())
        _drain_consumer(a)
        _drain_consumer(b)
        shared_pages = manager.io_pages()
        solo = run_scan(load_table(data, Layout.COLUMN), QUERY)
        # Two riders, one stream: strictly less than two solo scans.
        assert shared_pages < 2 * solo.events.pages_touched
