"""Figure 6 — baseline LINEITEM selection at 10 % selectivity."""

from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import fig06_baseline


def bench_figure6_baseline(benchmark):
    out = run_once(benchmark, lambda: fig06_baseline.run(num_rows=BENCH_ROWS))
    publish(out, "figure_06_baseline.txt")

    row = out.series["row_elapsed"]
    col = out.series["col_elapsed"]
    # The row store is flat in projectivity, near 9.5 GB / 180 MB/s.
    assert max(row) - min(row) < 0.02 * max(row)
    assert abs(row[0] - 52.5) / 52.5 < 0.05
    # The column store wins until it selects >85% of the tuple bytes.
    crossover = [
        sel / 150
        for sel, r, c in zip(out.series["selected_bytes"], row, col)
        if c > r
    ]
    assert crossover and min(crossover) >= 0.85
    # Column CPU exceeds row CPU once most attributes are selected.
    assert out.series["col_cpu"][-1] > out.series["row_cpu"][-1]
