"""Operator span tracing: exact attribution, exporters, no-op parity.

The acceptance bar from the observability milestone: for a 3-operator
plan the EXPLAIN ANALYZE text and the Chrome trace agree with each
other, and the per-operator exclusive ``CostEvents`` deltas sum
*exactly* to the plan-total ``CostEvents`` — across all four scanner
architectures.
"""

from __future__ import annotations

import pytest

from repro.data.tpch import generate_lineitem, generate_orders
from repro.database import Database
from repro.engine.context import ExecutionContext
from repro.engine.executor import run_scan
from repro.engine.plan import ColumnScannerKind, aggregate_plan, scan_plan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import AggregateFunction, AggregateSpec, ScanQuery
from repro.iosim.request import FileExtent
from repro.iosim.sim import DiskArraySim
from repro.iosim.streams import ScanStream, SubmissionPolicy
from repro.obs import SpanTracer, chrome_trace, flat_profile, render_explain
from repro.storage.layout import Layout
from repro.storage.loader import load_table

ROWS = 600
SELECT = ("L_PARTKEY", "L_QUANTITY", "L_SHIPMODE")


@pytest.fixture(scope="module")
def data():
    return generate_lineitem(ROWS, seed=23)


def _query(data):
    predicate = predicate_for_selectivity(
        "L_PARTKEY", data.column("L_PARTKEY"), 0.30
    )
    return ScanQuery("LINEITEM", select=SELECT, predicates=(predicate,))


def _three_op_plan(context, data):
    """SortAggregate -> SortOperator -> ColumnScanner."""
    table = load_table(data, Layout.COLUMN)
    spec = AggregateSpec(
        group_by=("L_SHIPMODE",),
        function=AggregateFunction.SUM,
        argument="L_QUANTITY",
    )
    return aggregate_plan(context, table, _query(data), spec, sort_based=True)


#: (layout, column-scanner kind) for the four scanner architectures.
ARCHITECTURES = [
    ("row", Layout.ROW, ColumnScannerKind.PIPELINED),
    ("column-pipelined", Layout.COLUMN, ColumnScannerKind.PIPELINED),
    ("column-fused", Layout.COLUMN, ColumnScannerKind.FUSED),
    ("pax", Layout.PAX, ColumnScannerKind.PIPELINED),
]


class TestExactAttribution:
    @pytest.mark.parametrize(
        "layout,kind",
        [(layout, kind) for _, layout, kind in ARCHITECTURES],
        ids=[name for name, _, _ in ARCHITECTURES],
    )
    def test_span_deltas_sum_to_plan_total(self, data, layout, kind):
        context = ExecutionContext(tracer=SpanTracer())
        table = load_table(data, layout)
        result = run_scan(table, _query(data), context, column_scanner=kind)
        assert result.num_tuples > 0
        total = context.tracer.total_events().as_dict()
        assert total == context.events.as_dict()
        # the total is real work, not all zeros
        assert any(total.values())

    def test_three_operator_plan_sums_exactly(self, data):
        context = ExecutionContext(tracer=SpanTracer())
        plan = _three_op_plan(context, data)
        plan.drain()
        tracer = context.tracer
        assert len(tracer.spans()) == 3
        assert tracer.total_events().as_dict() == context.events.as_dict()
        # exclusive events really partition the work: each span holds a
        # strict subset, and no span's exclusive delta is the whole total
        agg, sort, scan = tracer.spans()
        assert agg.events.agg_updates > 0
        assert sort.events.sort_comparisons > 0
        assert scan.events.values_examined > 0
        assert scan.events.agg_updates == 0
        assert agg.events.values_examined == 0


class TestSpanTree:
    def test_tree_structure_matches_plan(self, data):
        context = ExecutionContext(tracer=SpanTracer())
        _three_op_plan(context, data).drain()
        roots = context.tracer.roots
        assert len(roots) == 1
        agg = roots[0]
        assert agg.name == "SortAggregate"
        assert len(agg.children) == 1
        sort = agg.children[0]
        assert sort.name == "SortOperator"
        assert len(sort.children) == 1
        scan = sort.children[0]
        assert scan.name == "ColumnScanner"
        assert scan.children == []

    def test_describe_details_surface_in_spans(self, data):
        context = ExecutionContext(tracer=SpanTracer())
        _three_op_plan(context, data).drain()
        agg, sort, scan = context.tracer.spans()
        assert "sum(L_QUANTITY)" in agg.detail
        assert "L_SHIPMODE" in sort.detail
        assert "LINEITEM" in scan.detail

    def test_wall_time_and_call_accounting(self, data):
        context = ExecutionContext(tracer=SpanTracer())
        _three_op_plan(context, data).drain()
        for span in context.tracer.spans():
            assert span.wall_ns == span.open_ns + span.next_ns + span.close_ns
            # next() is called until it returns None: calls > blocks
            assert span.next_calls > span.blocks >= 1
        agg = context.tracer.roots[0]
        # root rows = number of groups; inclusive wall dominates children
        assert agg.rows > 0
        assert agg.wall_ns >= max(c.wall_ns for c in agg.children)
        assert 0 < agg.self_ns <= agg.wall_ns


class TestExporterAgreement:
    """EXPLAIN ANALYZE and the Chrome trace describe the same execution."""

    @pytest.fixture(scope="class")
    def traced(self, data):
        context = ExecutionContext(tracer=SpanTracer())
        _three_op_plan(context, data).drain()
        return context.tracer

    def test_explain_and_trace_agree_per_span(self, traced):
        text = render_explain(traced)
        document = chrome_trace(traced)
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        for span in traced.spans():
            mine = [s for s in slices if s["args"]["span_id"] == span.span_id]
            # one slice per traced call
            next_slices = [s for s in mine if s["args"]["phase"] == "next"]
            assert len(next_slices) == span.next_calls
            assert len(mine) == span.next_calls + 2  # + open + close
            # trace durations (us) sum to the span's inclusive wall time
            assert sum(s["dur"] for s in mine) * 1_000 == pytest.approx(
                span.wall_ns, rel=1e-9, abs=1.0
            )
            # and the explain text reports those same numbers
            assert f"{span.name}" in text
            assert f"next() x{span.next_calls}" in text

    def test_explain_header_counts_operators(self, traced):
        text = render_explain(traced)
        assert text.startswith("EXPLAIN ANALYZE")
        assert "3 operators" in text

    def test_chrome_trace_is_perfetto_shaped(self, traced):
        document = chrome_trace(traced)
        assert document["displayTimeUnit"] == "ms"
        kinds = {e["ph"] for e in document["traceEvents"]}
        assert kinds == {"M", "X"}
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0

    def test_flat_profile_mirrors_tree(self, traced):
        profile = flat_profile(traced)
        assert len(profile["spans"]) == 3
        by_id = {r["span_id"]: r for r in profile["spans"]}
        root = profile["spans"][0]
        assert root["parent_id"] is None and root["depth"] == 0
        for record in profile["spans"][1:]:
            assert by_id[record["parent_id"]]["depth"] == record["depth"] - 1
        assert profile["total_events"] == traced.total_events().as_dict()
        assert profile["total_wall_ns"] == traced.total_wall_ns


class TestNoOpParity:
    def test_traced_and_untraced_runs_match(self, data):
        table = load_table(data, Layout.COLUMN)
        plain = run_scan(table, _query(data))
        context = ExecutionContext(tracer=SpanTracer())
        traced = run_scan(table, _query(data), context)
        assert plain.num_tuples == traced.num_tuples
        assert plain.events.as_dict() == traced.events.as_dict()
        assert plain.rows() == traced.rows()

    def test_untraced_context_records_no_spans(self, data):
        table = load_table(data, Layout.COLUMN)
        context = ExecutionContext()
        run_scan(table, _query(data), context)
        assert context.tracer is None

    def test_slice_cap_drops_but_keeps_aggregates(self, data):
        tracer = SpanTracer(max_slices=2)
        context = ExecutionContext(tracer=tracer)
        _three_op_plan(context, data).drain()
        assert len(tracer.slices) == 2
        assert tracer.dropped_slices > 0
        assert chrome_trace(tracer)["metadata"]["dropped_slices"] > 0
        # aggregation is unaffected by the slice cap
        assert tracer.total_events().as_dict() == context.events.as_dict()


class TestResetEventsRegression:
    def test_events_survive_repeated_executions(self, data):
        """reset_events() replaces the object; operators must re-read it.

        Regression for a latent aliasing bug: an operator caching
        ``context.events`` at construction would write the second run's
        counts into the orphaned first-run object.
        """
        context = ExecutionContext()
        table = load_table(data, Layout.COLUMN)
        plan = scan_plan(context, table, _query(data))
        plan.drain()
        first = context.events
        first_counts = first.as_dict()
        assert first.values_examined > 0

        context.reset_events()
        assert context.events is not first
        plan.drain()
        second = context.events
        # the second run lands in the new object with identical counts...
        assert second.as_dict() == first_counts
        # ...and the first run's result snapshot is untouched
        assert first.as_dict() == first_counts

    def test_query_result_keeps_its_run_counts(self, data):
        context = ExecutionContext()
        table = load_table(data, Layout.COLUMN)
        result = run_scan(table, _query(data), context)
        saved = result.events.as_dict()
        context.reset_events()
        run_scan(table, _query(data), context)
        assert result.events.as_dict() == saved


class TestDatabaseFacade:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        database.create_table(generate_orders(500, seed=9))
        return database

    def test_explain_text(self, db):
        text = db.explain("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
        assert text.startswith("EXPLAIN ANALYZE")
        assert "Scanner" in text
        assert "events:" in text

    def test_profile_bundle(self, db, tmp_path):
        profile = db.profile("ORDERS", select=("O_ORDERKEY", "O_TOTALPRICE"))
        assert profile.result.num_tuples == 500
        assert profile.tracer.total_events().as_dict() == {
            **profile.result.events.as_dict()
        }
        payload = profile.to_dict()
        assert payload["provenance"]["git_sha"]
        assert payload["provenance"]["calibration_fingerprint"]
        trace_path = profile.save_chrome_trace(tmp_path / "trace.json")
        prof_path = profile.save_profile(tmp_path / "profile.json")
        import json

        assert json.loads(trace_path.read_text())["traceEvents"]
        assert json.loads(prof_path.read_text())["spans"]


class TestIoSimTrace:
    def test_run_appends_one_slice_per_unit(self):
        sim = DiskArraySim()
        stream = ScanStream(
            name="scan",
            files=[FileExtent("LINEITEM.dat", 8 * sim.unit_bytes)],
            unit_bytes=sim.unit_bytes,
            prefetch_depth=2,
            policy=SubmissionPolicy.ROW,
        )
        trace = []
        stats = sim.run([stream], trace=trace)["scan"]
        assert len(trace) == stats.units
        assert sum(piece.size_bytes for piece in trace) == stats.bytes_read
        assert all(piece.finish > piece.start for piece in trace)
        # first unit pays the initial seek
        assert trace[0].seek_seconds > 0

    def test_io_slices_export_as_second_process(self):
        sim = DiskArraySim()
        stream = ScanStream(
            name="scan",
            files=[FileExtent("LINEITEM.dat", 4 * sim.unit_bytes)],
            unit_bytes=sim.unit_bytes,
            prefetch_depth=2,
            policy=SubmissionPolicy.ROW,
        )
        trace = []
        sim.run([stream], trace=trace)
        document = chrome_trace(io_slices=trace)
        io_events = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "io"
        ]
        assert len(io_events) == len(trace)
        assert all(e["pid"] == 2 for e in io_events)
        names = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["args"].get("name") == "stream scan"
        ]
        assert names
