"""Concurrent-workload throughput benchmark (shared scans on vs off).

Drives the cooperative scheduler with 1, 4, 16, and 64 simultaneous
clients — every client a COLUMN-layout ORDERS selection at ~30%
selectivity over the same column set, the regime where Figure 11's
competing-scans contention bites — and reports, per client count and
sharing arm:

1. **correctness (hard gate)** — every handle's result must be
   byte-identical to the serial scan of the same query;
2. **I/O gate (hard)** — with >= 2 co-running clients, shared scans
   must *strictly* reduce the scheduler's modeled I/O bytes versus the
   sharing-off arm (the circular stream reads each page once per pass
   instead of once per rider);
3. **latency + throughput** — p50/p95/p99 of per-query latency (queue
   time included, as governance counts it) and queries/second from the
   batch makespan;
4. **paper-scale model** — :func:`repro.iosim.measure_competing_scans`
   numbers for the same client counts on the simulated disk array
   (machine-independent shape of Figure 11).

Emits a provenance-stamped ``bench_workload_throughput.json`` under
``--out`` for the CI artifact upload.

Usage::

    python benchmarks/bench_workload_throughput.py --out workload-artifacts
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

import numpy as np

from repro.data.tpch import generate_orders
from repro.engine.executor import run_scan
from repro.engine.predicate import predicate_for_selectivity
from repro.engine.query import ScanQuery
from repro.engine.scheduler import QueryState, Scheduler
from repro.iosim import measure_competing_scans
from repro.obs.provenance import provenance
from repro.storage.layout import Layout
from repro.storage.loader import load_table

ROWS = 60_000
SELECTIVITY = 0.30
SELECT = ("O_ORDERKEY", "O_CUSTKEY", "O_TOTALPRICE", "O_ORDERDATE")
CLIENT_COUNTS = (1, 4, 16, 64)
MAX_INFLIGHT = 8


def _workload():
    data = generate_orders(ROWS, seed=13)
    table = load_table(data, Layout.COLUMN)
    predicate = predicate_for_selectivity(
        "O_TOTALPRICE", data.column("O_TOTALPRICE"), SELECTIVITY
    )
    query = ScanQuery("ORDERS", select=SELECT, predicates=(predicate,))
    return table, query


def _assert_identical(got, want, label: str) -> None:
    assert np.array_equal(got.positions, want.positions), label
    assert set(got.columns) == set(want.columns), label
    for name in want.columns:
        assert np.array_equal(got.columns[name], want.columns[name]), (label, name)


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def _run_batch(table, query, serial, clients: int, share: bool) -> dict:
    scheduler = Scheduler(max_inflight=MAX_INFLIGHT, share_scans=share)
    started = time.perf_counter()
    handles = [
        scheduler.submit(table, query, label=f"client-{index}")
        for index in range(clients)
    ]
    scheduler.run()
    makespan = time.perf_counter() - started
    label = f"clients={clients} share={'on' if share else 'off'}"
    for handle in handles:
        assert handle.state is QueryState.DONE, f"{label}: {handle.error}"
        _assert_identical(handle.result, serial, label)
    latencies = [handle.latency for handle in handles]
    stats = scheduler.stats()
    return {
        "clients": clients,
        "share_scans": share,
        "makespan_seconds": makespan,
        "qps": clients / makespan if makespan else float("inf"),
        "latency_p50_seconds": _percentile(latencies, 50),
        "latency_p95_seconds": _percentile(latencies, 95),
        "latency_p99_seconds": _percentile(latencies, 99),
        "max_queue_wait_seconds": stats["max_queue_wait_s"],
        "modeled_io_bytes": stats["modeled_io_bytes"],
        "share_hits": stats["share_hits"],
        "share_misses": stats["share_misses"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="workload-artifacts",
        help="directory for bench_workload_throughput.json",
    )
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    table, query = _workload()
    serial = run_scan(table, query)
    table_bytes = table.total_bytes
    print(
        f"workload: {ROWS} ORDERS rows ({table_bytes / 1e6:.1f} MB COLUMN), "
        f"{SELECTIVITY:.0%} selectivity, {serial.num_tuples} qualifying tuples, "
        f"max_inflight={MAX_INFLIGHT}"
    )

    arms = []
    ok = True
    for clients in CLIENT_COUNTS:
        on = _run_batch(table, query, serial, clients, share=True)
        off = _run_batch(table, query, serial, clients, share=False)
        arms.extend([on, off])
        saved = 1 - on["modeled_io_bytes"] / off["modeled_io_bytes"]
        print(
            f"  {clients:>2} clients: sharing on {on['qps']:7.1f} qps "
            f"p50 {on['latency_p50_seconds'] * 1e3:6.1f} ms "
            f"p95 {on['latency_p95_seconds'] * 1e3:6.1f} ms "
            f"p99 {on['latency_p99_seconds'] * 1e3:6.1f} ms | "
            f"off {off['qps']:7.1f} qps | io saved {saved:6.1%}"
        )
        if clients >= 2:
            gate = on["modeled_io_bytes"] < off["modeled_io_bytes"]
            ok = ok and gate
            if not gate:
                print(
                    f"  FAIL: sharing did not reduce modeled I/O at "
                    f"{clients} clients ({on['modeled_io_bytes']} >= "
                    f"{off['modeled_io_bytes']})"
                )
    print(
        "correctness: every concurrent result byte-identical to serial; "
        f"I/O gate {'OK' if ok else 'FAIL'}"
    )

    # Paper-scale model: the same client counts on the simulated array,
    # all arriving together (the worst competing-scans regime).
    model = {}
    for clients in CLIENT_COUNTS:
        point = measure_competing_scans(table_bytes, [0.0] * clients)
        model[str(clients)] = point.as_dict()
        print(
            f"model: {clients:>2} clients -> sharing saves "
            f"{point.io_savings:.1%} of bytes, {point.speedup:.2f}x makespan"
        )

    (out_dir / "bench_workload_throughput.json").write_text(
        json.dumps(
            {
                "rows": ROWS,
                "selectivity": SELECTIVITY,
                "select": list(SELECT),
                "table_bytes": table_bytes,
                "max_inflight": MAX_INFLIGHT,
                "client_counts": list(CLIENT_COUNTS),
                "arms": arms,
                "model": model,
                "ok": ok,
                "provenance": provenance(),
            },
            indent=2,
        )
        + "\n"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
