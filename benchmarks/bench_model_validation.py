"""Section 5 — analytical model vs simulator measurement."""

import numpy as np
from _common import BENCH_ROWS, publish, run_once

from repro.experiments.figures import model_validation


def bench_model_validation(benchmark):
    out = run_once(benchmark, lambda: model_validation.run(num_rows=BENCH_ROWS))
    publish(out, "model_validation.txt")

    measured = np.array(out.series["measured"])
    predicted = np.array(out.series["predicted"])
    rel_err = np.abs(predicted - measured) / measured
    assert rel_err.max() < 0.25
    # Predictions agree on who wins in every case.
    assert ((measured > 1) == (predicted > 1)).mean() >= 0.85
