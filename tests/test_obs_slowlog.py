"""Slow-query log: threshold/top-K semantics and workload capture."""

from __future__ import annotations

import pytest

from repro.data.tpch import generate_orders
from repro.database import Database
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog


def _entry(label: str, latency_s: float, **kwargs) -> SlowQueryEntry:
    defaults = dict(
        table="ORDERS",
        queue_s=0.0,
        slices=3,
        rows=10,
        error=None,
        shared=False,
    )
    defaults.update(kwargs)
    return SlowQueryEntry(label=label, latency_s=latency_s, **defaults)


class TestSlowQueryLog:
    def test_keeps_only_the_top_k_slowest(self):
        log = SlowQueryLog(top_k=2)
        for label, latency in (("a", 0.1), ("b", 0.3), ("c", 0.2), ("d", 0.05)):
            log.observe(_entry(label, latency))
        assert log.observed == 4
        assert [e.label for e in log.entries()] == ["b", "c"]

    def test_threshold_filters_before_the_heap(self):
        log = SlowQueryLog(threshold_s=0.1, top_k=5)
        assert not log.observe(_entry("fast", 0.05))
        assert log.observe(_entry("slow", 0.2))
        assert len(log) == 1

    def test_ties_prefer_the_earlier_entry(self):
        log = SlowQueryLog(top_k=1)
        assert log.observe(_entry("first", 0.2))
        assert not log.observe(_entry("second", 0.2))
        assert [e.label for e in log.entries()] == ["first"]

    def test_top_k_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(top_k=0)

    def test_render_is_slowest_first_with_forensics(self):
        log = SlowQueryLog(top_k=3)
        log.observe(_entry("a", 0.01, events={"pages_touched": 7}))
        log.observe(
            _entry("b", 0.02, error="QueryTimeout", shared=True, events={})
        )
        text = log.render()
        assert text.splitlines()[0].startswith("slow-query log: top 2 of 2")
        assert text.index("#1 b") < text.index("#2 a")
        assert "[QueryTimeout]" in text
        assert "pages=7" in text

    def test_render_includes_explain_when_present(self):
        log = SlowQueryLog()
        log.observe(_entry("a", 0.01, explain="EXPLAIN ANALYZE\nScanner"))
        assert "  | Scanner" in log.render()


class TestWorkloadCapture:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        database.create_table(generate_orders(2_000, seed=29))
        return database

    def test_run_workload_returns_a_populated_slowlog(self, db):
        info = {}
        requests = [
            {"table": "ORDERS", "select": ("O_ORDERKEY",)} for _ in range(4)
        ]
        handles = db.run_workload(requests, info=info)
        log = info["slowlog"]
        assert isinstance(log, SlowQueryLog)
        assert log.observed == len(handles)
        entries = log.entries()
        assert entries, "default threshold 0.0 keeps completed queries"
        latencies = [entry.latency_s for entry in entries]
        assert latencies == sorted(latencies, reverse=True)
        assert {entry.table for entry in entries} == {"ORDERS"}
        assert all(entry.slices > 0 for entry in entries)

    def test_custom_log_controls_threshold_and_k(self, db):
        log = SlowQueryLog(threshold_s=3600.0, top_k=2)
        requests = [
            {"table": "ORDERS", "select": ("O_ORDERKEY",)} for _ in range(3)
        ]
        db.run_workload(requests, slowlog=log)
        assert log.observed == 3
        assert len(log) == 0  # nothing clears a one-hour threshold

    def test_traced_batches_attach_explain_text(self, db):
        info = {}
        db.run_workload(
            [{"table": "ORDERS", "select": ("O_ORDERKEY",)}],
            trace=True,
            info=info,
        )
        entries = info["slowlog"].entries()
        assert entries and entries[0].explain
        assert "EXPLAIN ANALYZE" in entries[0].explain

    def test_failed_queries_carry_their_error(self, db):
        info = {}
        db.run_workload(
            [
                {
                    "table": "ORDERS",
                    "select": ("O_ORDERKEY",),
                    "timeout": 1e-9,
                }
            ],
            info=info,
        )
        entries = info["slowlog"].entries()
        assert entries[0].error == "QueryTimeout"
